"""Bit-packed boolean matrices for the large-n lattice order core.

The dense order construction of :mod:`repro.core.order` stores the
containment relation and its transitive reduction as two ``n x n`` bool
arrays — 2 bytes per pair, which walls out families beyond a few tens of
thousands of closed itemsets (2 x 2.5 GB at n = 50k).  This module packs
the same relations 64 pairs per uint64 word, an 8x (vs one bool matrix)
to 16x (vs the pair of them) memory reduction, and re-expresses the two
construction passes so that only bounded row blocks are ever unpacked:

* :func:`packed_containment` — the bulk AND/compare subset pass, written
  block-by-block straight into packed words.  Rows sorted by cardinality
  (the canonical member order of a family) additionally prune every
  same-or-smaller-size column group, which is where the bulk of the
  pair tests of a wide lattice live.
* :func:`packed_hasse_reduction` — the boolean-matmul transitive
  reduction ``proper & ~(proper @ proper)``, evaluated as a blocked
  gather/OR-reduce over packed rows (``(A @ A)[i] = OR of rows A[k]
  over the set bits k of A[i]``), fused with the AND-NOT so no packed
  intermediate for the two-step relation is ever materialised.

:class:`BitMatrix` itself is a thin, general-purpose packed bool matrix:
little-endian bit order within each row (bit ``j`` of a row lives in
word ``j >> 6`` at position ``j & 63``, matching the layout
``np.packbits(..., bitorder="little")`` produces and
:func:`repro.core.order.pack_itemset_masks` already uses), popcount row
statistics via ``np.bitwise_count``, and packed AND / OR / ANDN row ops.
Bits at column positions ``>= n_cols`` (the tail of the last word) are
kept zero as a class invariant so popcounts and reductions never see
padding.
"""

from __future__ import annotations

import numpy as np

from .parallel import KernelExecutor, get_executor

__all__ = [
    "BitMatrix",
    "packed_containment",
    "packed_hasse_reduction",
]

#: Bits per packed word.
WORD_BITS = 64

#: Upper bound (in matrix cells) on the temporary blocks unpacked or
#: gathered by the blocked passes.  :mod:`repro.core.order` imports this
#: as its dense working-set budget too, so one constant bounds both
#: constructions.
_BLOCK_CELLS = 1 << 24

#: Row cap per containment shard.  The cell budget alone lets a narrow
#: column suffix (the common case after level-wise pruning: most rows
#: only test against a thin top layer) collapse into one giant task,
#: which would starve a multi-worker executor; capping the rows keeps
#: enough shards to spread while staying far above the per-task
#: scheduling overhead.
_MAX_SHARD_ROWS = 1 << 14


def _words_for(n_cols: int) -> int:
    """Number of uint64 words needed to hold *n_cols* bits."""
    return (n_cols + WORD_BITS - 1) // WORD_BITS


def _packed_nonzero(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(rows, cols)`` of the set bits of packed rows, row-major order.

    Scans the uint64 words directly (8x fewer bytes than unpacking to
    bools) and only expands the nonzero words bit-by-bit, so the cost is
    one streaming pass over the packed storage plus ``O(nnz)`` expansion
    — the dominant win for the sparse relations the order cores hold.
    Relies on the :class:`BitMatrix` invariant that padding bits past
    the logical column count are zero; stray padding bits would surface
    as out-of-range column indices.
    """
    nz_rows, nz_words = np.nonzero(words)
    if not nz_rows.size:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    values = np.ascontiguousarray(words[nz_rows, nz_words])
    bits = np.unpackbits(
        values.reshape(-1, 1).view(np.uint8), axis=1, bitorder="little"
    )
    word_index, bit_index = np.nonzero(bits)
    rows = nz_rows[word_index].astype(np.int64, copy=False)
    cols = nz_words[word_index].astype(np.int64) * WORD_BITS + bit_index
    return rows, cols


def _pack_rows(dense: np.ndarray) -> np.ndarray:
    """Pack a 2-D bool array into rows of little-endian uint64 words."""
    dense = np.ascontiguousarray(dense, dtype=bool)
    n_rows, n_cols = dense.shape
    words = np.zeros((n_rows, _words_for(n_cols)), dtype=np.uint64)
    if n_rows and n_cols:
        packed = np.packbits(dense, axis=1, bitorder="little")
        pad = (-packed.shape[1]) % 8
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        words[:] = np.ascontiguousarray(packed).view(np.uint64)
    return words


class BitMatrix:
    """A boolean matrix packed 64 columns per uint64 word, row-major.

    Parameters
    ----------
    words:
        ``(n_rows, n_words)`` uint64 array; bit ``j & 63`` of
        ``words[i, j >> 6]`` is cell ``(i, j)``.
    n_cols:
        Logical column count; ``n_words`` must be ``ceil(n_cols / 64)``
        and all bits at positions ``>= n_cols`` must be zero.
    """

    __slots__ = ("words", "n_cols")

    def __init__(self, words: np.ndarray, n_cols: int) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        if words.shape[1] != _words_for(n_cols):
            raise ValueError(
                f"{words.shape[1]} words cannot hold exactly {n_cols} columns"
            )
        self.words = words
        self.n_cols = int(n_cols)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n_rows: int, n_cols: int) -> "BitMatrix":
        """An all-false matrix of the given logical shape."""
        return cls(np.zeros((n_rows, _words_for(n_cols)), dtype=np.uint64), n_cols)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        """Pack a 2-D bool (or bool-convertible) array."""
        dense = np.ascontiguousarray(dense, dtype=bool)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {dense.shape}")
        return cls(_pack_rows(dense), dense.shape[1])

    def copy(self) -> "BitMatrix":
        """An independent copy (the words array is duplicated)."""
        return BitMatrix(self.words.copy(), self.n_cols)

    def equals(self, other: "BitMatrix") -> bool:
        """Exact equality: same logical shape and same packed words.

        Because the padding bits past ``n_cols`` are a zero invariant,
        word equality is cell equality — this is the check the store
        round-trip tests rely on.
        """
        return self.shape == other.shape and bool(
            np.array_equal(self.words, other.words)
        )

    # ------------------------------------------------------------------
    # Shape and scalar access
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        """Packed words per row."""
        return self.words.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(n_rows, n_cols)`` shape."""
        return (self.n_rows, self.n_cols)

    def __repr__(self) -> str:
        return f"BitMatrix({self.n_rows}x{self.n_cols}, {self.n_words} words/row)"

    def get(self, row: int, col: int) -> bool:
        """Cell ``(row, col)`` as a Python bool."""
        col = int(col)
        if not 0 <= col < self.n_cols:
            raise IndexError(f"column {col} out of range [0, {self.n_cols})")
        word = int(self.words[row, col >> 6])
        return bool((word >> (col & 63)) & 1)

    # ------------------------------------------------------------------
    # Unpacking and row/column views
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The full matrix as a ``(n_rows, n_cols)`` bool array."""
        if self.n_cols == 0 or self.n_rows == 0:
            return np.zeros(self.shape, dtype=bool)
        raw = np.ascontiguousarray(self.words).view(np.uint8)
        bits = np.unpackbits(raw, axis=1, bitorder="little")
        return bits[:, : self.n_cols].astype(bool)

    def row_bool(self, row: int) -> np.ndarray:
        """Row *row* unpacked to a bool array of length ``n_cols``."""
        if self.n_cols == 0:
            return np.zeros(0, dtype=bool)
        raw = np.ascontiguousarray(self.words[row]).view(np.uint8)
        return np.unpackbits(raw, bitorder="little")[: self.n_cols].astype(bool)

    def row_indices(self, row: int) -> np.ndarray:
        """Column indices of the set bits of row *row*, ascending."""
        return np.nonzero(self.row_bool(row))[0]

    def column_bool(self, col: int) -> np.ndarray:
        """Column *col* as a bool array of length ``n_rows``.

        A column read touches one word per row (``n_rows`` words total),
        not the whole matrix — there is no packed transpose to maintain.
        """
        if not 0 <= col < self.n_cols:
            raise IndexError(f"column {col} out of range [0, {self.n_cols})")
        return ((self.words[:, col >> 6] >> np.uint64(col & 63)) & np.uint64(1)).astype(
            bool
        )

    def column_indices(self, col: int) -> np.ndarray:
        """Row indices of the set bits of column *col*, ascending."""
        return np.nonzero(self.column_bool(col))[0]

    # ------------------------------------------------------------------
    # Popcount statistics
    # ------------------------------------------------------------------
    def row_counts(self) -> np.ndarray:
        """Set bits per row (popcount over the packed words), int64."""
        if self.n_words == 0:
            return np.zeros(self.n_rows, dtype=np.int64)
        return np.bitwise_count(self.words).sum(axis=1, dtype=np.int64)

    def column_counts(self) -> np.ndarray:
        """Set bits per column, int64; unpacks in bounded row blocks."""
        counts = np.zeros(self.n_cols, dtype=np.int64)
        if self.n_cols == 0:
            return counts
        block = max(1, _BLOCK_CELLS // max(1, self.n_cols))
        for start in range(0, self.n_rows, block):
            raw = np.ascontiguousarray(self.words[start : start + block]).view(np.uint8)
            bits = np.unpackbits(raw, axis=1, bitorder="little")
            counts += bits[:, : self.n_cols].sum(axis=0, dtype=np.int64)
        return counts

    def count(self) -> int:
        """Total number of set bits."""
        if self.n_words == 0:
            return 0
        return int(np.bitwise_count(self.words).sum(dtype=np.int64))

    def nonzero(self) -> tuple[np.ndarray, np.ndarray]:
        """``(rows, cols)`` index arrays of the set cells, row-major order.

        Equivalent to ``np.nonzero(self.to_dense())`` but never unpacks
        the matrix: one streaming scan of the packed words plus
        ``O(nnz)`` bit expansion (see :func:`_packed_nonzero`).
        """
        return _packed_nonzero(self.words)

    # ------------------------------------------------------------------
    # Packed element-wise ops (padding invariant preserved)
    # ------------------------------------------------------------------
    def _check_same_shape(self, other: "BitMatrix") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    def __and__(self, other: "BitMatrix") -> "BitMatrix":
        self._check_same_shape(other)
        return BitMatrix(self.words & other.words, self.n_cols)

    def __or__(self, other: "BitMatrix") -> "BitMatrix":
        self._check_same_shape(other)
        return BitMatrix(self.words | other.words, self.n_cols)

    def and_not(self, other: "BitMatrix") -> "BitMatrix":
        """``self & ~other`` without materialising the negation."""
        self._check_same_shape(other)
        return BitMatrix(self.words & ~other.words, self.n_cols)

    def _tail_mask(self) -> np.ndarray:
        """Per-word mask with ones at valid column positions only."""
        mask = np.full(self.n_words, ~np.uint64(0), dtype=np.uint64)
        tail = self.n_cols & 63
        if self.n_words and tail:
            mask[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
        return mask

    def logical_not(self) -> "BitMatrix":
        """Element-wise negation, keeping the padding bits zero."""
        return BitMatrix(~self.words & self._tail_mask(), self.n_cols)

    def clear_diagonal(self) -> None:
        """Set ``(i, i)`` to false in place for every valid diagonal cell."""
        n = min(self.n_rows, self.n_cols)
        if n == 0:
            return
        diagonal = np.arange(n)
        self.words[diagonal, diagonal >> 6] &= ~(
            np.uint64(1) << (diagonal & 63).astype(np.uint64)
        )

    # ------------------------------------------------------------------
    # Blocked boolean matrix product
    # ------------------------------------------------------------------
    def _gather_or_bounds(
        self, counts: np.ndarray, other: "BitMatrix"
    ) -> list[tuple[int, int]]:
        """Row-span boundaries of the blocked ``self @ other`` product.

        A pure function of the selector row popcounts: each span bounds
        both the result rows it holds and the operand rows it will gather
        (the working-set budget), so the spans — and therefore the block
        decomposition — are identical whatever executor later runs them.
        """
        # Two budgets, both in words: how many operand rows one block may
        # gather at a time, and how many result rows it may hold.
        gather_budget = max(1, _BLOCK_CELLS // max(1, other.n_words))
        row_cap = max(1, _BLOCK_CELLS // max(8, 8 * other.n_words))
        bounds: list[tuple[int, int]] = []
        start = 0
        n_rows = self.n_rows
        while start < n_rows:
            stop = start + 1
            gathered_rows = int(counts[start])
            while (
                stop < n_rows
                and stop - start < row_cap
                and gathered_rows + int(counts[stop]) <= gather_budget
            ):
                gathered_rows += int(counts[stop])
                stop += 1
            bounds.append((start, stop))
            start = stop
        return bounds

    def _gather_or_reach(
        self, other: "BitMatrix", counts: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """One row span of ``self @ other``: the OR-reduction of the
        operand rows selected by each selector row in ``[start, stop)``.

        Independent of every other span (reads shared inputs, returns a
        fresh array), which is what makes the block loop shardable.
        """
        gather_budget = max(1, _BLOCK_CELLS // max(1, other.n_words))
        gathered_rows = int(counts[start:stop].sum())
        reach = np.zeros((stop - start, other.n_words), dtype=np.uint64)
        if gathered_rows > gather_budget:
            # A single row wider than the whole budget: OR its selected
            # operand rows in bounded chunks instead of one oversized
            # gather.
            selected = _packed_nonzero(self.words[start:stop])[1]
            for chunk_start in range(0, selected.size, gather_budget):
                chunk = selected[chunk_start : chunk_start + gather_budget]
                reach[0] |= np.bitwise_or.reduce(other.words[chunk], axis=0)
        elif gathered_rows:
            block_rows, selected = _packed_nonzero(self.words[start:stop])
            gathered = other.words[selected]
            block_counts = np.bincount(block_rows, minlength=stop - start)
            nonempty = np.nonzero(block_counts)[0]
            offsets = np.zeros(len(nonempty), dtype=np.intp)
            np.cumsum(block_counts[nonempty[:-1]], out=offsets[1:])
            reach[nonempty] = np.bitwise_or.reduceat(gathered, offsets, axis=0)
        return reach

    def _gather_or_blocks(self, other: "BitMatrix"):
        """Yield ``(start, stop, reach_words)`` blocks of ``self @ other``.

        Row ``i`` of the boolean product is the OR of the rows of *other*
        selected by the set bits of row ``i`` of *self*; each yielded
        block carries that OR-reduction (``(stop - start, other.n_words)``
        uint64) for a bounded slice of rows.  Block sizes are adaptive so
        that neither the unpacked selector rows nor the gathered operand
        rows exceed the working-set budget.
        """
        if self.n_cols != other.n_rows:
            raise ValueError(
                f"cannot multiply {self.shape} by {other.shape}: inner "
                "dimensions differ"
            )
        counts = self.row_counts()
        for start, stop in self._gather_or_bounds(counts, other):
            yield start, stop, self._gather_or_reach(other, counts, start, stop)

    def bool_matmul(
        self, other: "BitMatrix", executor: "KernelExecutor | None" = None
    ) -> "BitMatrix":
        """Boolean matrix product ``self @ other``, fully packed.

        ``result[i, j]`` is true iff some ``k`` has ``self[i, k]`` and
        ``other[k, j]``.  Runs as a blocked gather/OR-reduce over packed
        rows, so the working set beyond the packed result is bounded.
        The independent row spans are sharded across *executor* (serial
        by default); every span writes a disjoint result slice, so the
        output is byte-identical for any worker count.
        """
        if self.n_cols != other.n_rows:
            raise ValueError(
                f"cannot multiply {self.shape} by {other.shape}: inner "
                "dimensions differ"
            )
        executor = get_executor(executor)
        counts = self.row_counts()
        result = np.zeros((self.n_rows, other.n_words), dtype=np.uint64)

        def compute(span: tuple[int, int]) -> None:
            start, stop = span
            result[start:stop] = self._gather_or_reach(other, counts, start, stop)

        executor.map(compute, self._gather_or_bounds(counts, other))
        return BitMatrix(result, other.n_cols)


def packed_containment(
    masks: np.ndarray, executor: "KernelExecutor | None" = None
) -> BitMatrix:
    """Strict-containment relation of packed itemset masks, as a BitMatrix.

    The packed equivalent of
    :func:`repro.core.order.containment_matrix`: ``result[i, j]`` is true
    iff row ``i`` of *masks* is a proper subset of row ``j``.  Rows must
    be pairwise distinct.  When rows are sorted by cardinality (the
    canonical member order of an itemset family) the subset tests run per
    size group against the strictly-larger-size column suffix only, which
    skips every same-size pair of a wide lattice; unsorted input falls
    back to the full pair scan.  Either way only ``O(block x n)`` bool
    temporaries exist at a time and the result is written straight into
    packed words.

    The (size-group × row-block) loops are flattened into one shard list
    and spread across *executor* (serial by default).  Each shard keeps
    its group's column suffix — the level-wise pruning happens *before*
    the popcount work is scheduled — and writes a disjoint row slice of
    the packed result, so any worker count is byte-identical to serial.
    """
    masks = np.ascontiguousarray(masks, dtype=np.uint64)
    n, n_mask_words = masks.shape
    result = BitMatrix.zeros(n, n)
    if n == 0:
        return result
    if n_mask_words == 0:
        # Every row is the empty set; distinct-rows contract means n <= 1
        # and there is nothing to contain either way.
        return result
    executor = get_executor(executor)
    sizes = np.bitwise_count(masks).sum(axis=1, dtype=np.int64)
    size_sorted = bool(np.all(sizes[:-1] <= sizes[1:]))
    groups = _size_groups(sizes) if size_sorted else [(0, n, 0)]
    shards: list[tuple[int, int, int]] = []
    for row_start, row_stop, col_start in groups:
        n_cols = n - col_start
        if n_cols <= 0:
            continue
        block = max(1, min(_BLOCK_CELLS // max(1, n_cols), _MAX_SHARD_ROWS))
        for start in range(row_start, row_stop, block):
            shards.append((start, min(start + block, row_stop), col_start))

    def compute(shard: tuple[int, int, int]) -> None:
        start, stop, col_start = shard
        _containment_block(masks, result, start, stop, col_start)

    executor.map(compute, shards)
    if not size_sorted:
        result.clear_diagonal()
    return result


def _size_groups(sizes: np.ndarray) -> list[tuple[int, int, int]]:
    """``(row_start, row_stop, col_start)`` per distinct-cardinality group.

    With rows sorted by cardinality, a row of size ``s`` can only be
    properly contained in a column of size ``> s`` — the first index past
    the size-``s`` run.  Same-size pairs (including the diagonal) are
    never tested at all.
    """
    groups: list[tuple[int, int, int]] = []
    n = len(sizes)
    row_start = 0
    while row_start < n:
        row_stop = int(np.searchsorted(sizes, sizes[row_start], side="right"))
        if row_stop < n:
            groups.append((row_start, row_stop, row_stop))
        row_start = row_stop
    return groups


def _containment_block(
    masks: np.ndarray,
    result: BitMatrix,
    row_start: int,
    row_stop: int,
    col_start: int,
) -> None:
    """Subset-test rows ``[row_start, row_stop)`` against columns ``>= col_start``.

    One independent shard of :func:`packed_containment`: reads shared
    inputs, writes only its own packed row slice (and only the word range
    the column suffix occupies), so shards compose — in any execution
    order — to exactly the sequential result.
    """
    n = masks.shape[0]
    n_cols = n - col_start
    if n_cols <= 0:
        return
    # Align the written range to a word boundary so whole packed words
    # can be assigned.
    word_start = col_start >> 6
    bit_start = word_start << 6
    n_mask_words = masks.shape[1]
    rows = masks[row_start:row_stop]
    subset = np.ones((rows.shape[0], n_cols), dtype=bool)
    for word in range(n_mask_words):
        column = rows[:, word][:, None]
        subset &= (column & masks[None, col_start:, word]) == column
    padded = np.zeros((rows.shape[0], n - bit_start), dtype=bool)
    padded[:, col_start - bit_start :] = subset
    result.words[row_start : row_start + rows.shape[0], word_start:] = _pack_rows(
        padded
    )


def packed_hasse_reduction(
    proper: BitMatrix, executor: "KernelExecutor | None" = None
) -> BitMatrix:
    """Transitive reduction of a packed strict order: ``proper & ~(proper @ proper)``.

    The packed equivalent of :func:`repro.core.order.hasse_reduction`:
    a pair survives iff no third element lies strictly in between.  The
    two-step relation is evaluated block by block through the packed
    gather/OR-reduce product and fused with the AND-NOT, so besides the
    packed result only one bounded block of words is live at a time.
    The independent row spans are sharded across *executor* (serial by
    default) with disjoint output slices — byte-identical to the serial
    pass for any worker count.
    """
    n = proper.n_rows
    if proper.n_cols != n:
        raise ValueError(f"order relation must be square, got {proper.shape}")
    executor = get_executor(executor)
    counts = proper.row_counts()
    # np.zeros (calloc) over np.zeros_like, which memsets eagerly — the
    # spans below overwrite every row block anyway, so each page should
    # be written once, not twice.
    hasse = np.zeros(proper.words.shape, dtype=np.uint64)

    def compute(span: tuple[int, int]) -> None:
        start, stop = span
        reach = proper._gather_or_reach(proper, counts, start, stop)
        hasse[start:stop] = proper.words[start:stop] & ~reach

    executor.map(compute, proper._gather_or_bounds(counts, proper))
    return BitMatrix(hasse, n)
