"""Shared numeric tolerances.

Confidence and support values are ratios of integer counts, so they are
exact up to one floating-point division; every threshold comparison in the
library (rule generation, the bases, derivation) therefore uses the same
absolute tolerance rather than a per-module copy.
"""

from __future__ import annotations

__all__ = ["EPSILON"]

#: Absolute tolerance for confidence / support comparisons.  A rule is
#: "exact" when ``confidence >= 1 - EPSILON`` and clears a threshold when
#: ``value >= threshold - EPSILON``.
EPSILON = 1e-12
