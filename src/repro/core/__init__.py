"""Core theory: itemsets, closure operator, closed sets and the rule bases."""

from .closure import GaloisConnection
from .concept import FormalConcept, enumerate_concepts
from .derivation import BasisDerivation
from .dg_basis import DuquenneGuiguesBasis, build_duquenne_guigues_basis
from .families import ClosedItemsetFamily, ItemsetFamily
from .generators import GeneratorFamily, is_minimal_generator
from .informative import GenericBasis, InformativeBasis
from .itemset import Item, Itemset, powerset, proper_nonempty_subsets
from .lattice import IcebergLattice
from .luxenburger import LuxenburgerBasis, build_luxenburger_basis
from .pseudo_closed import PseudoClosedItemset, frequent_pseudo_closed_itemsets
from .redundancy import ReductionReport, implication_closure, reduction_report
from .rulearrays import RuleArrays
from .rules import AssociationRule, RuleSet

__all__ = [
    "Item",
    "Itemset",
    "powerset",
    "proper_nonempty_subsets",
    "GaloisConnection",
    "FormalConcept",
    "enumerate_concepts",
    "ItemsetFamily",
    "ClosedItemsetFamily",
    "GeneratorFamily",
    "is_minimal_generator",
    "PseudoClosedItemset",
    "frequent_pseudo_closed_itemsets",
    "DuquenneGuiguesBasis",
    "build_duquenne_guigues_basis",
    "LuxenburgerBasis",
    "build_luxenburger_basis",
    "GenericBasis",
    "InformativeBasis",
    "BasisDerivation",
    "IcebergLattice",
    "AssociationRule",
    "RuleSet",
    "RuleArrays",
    "ReductionReport",
    "reduction_report",
    "implication_closure",
]
