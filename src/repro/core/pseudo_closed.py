"""Frequent pseudo-closed itemsets (the antecedents of the Duquenne-Guigues basis).

Theorem 1 of the paper defines a *frequent pseudo-closed itemset* as a
frequent itemset ``P`` that is **not** closed and that **contains the
closure of every frequent pseudo-closed itemset strictly included in it**.
The Duquenne-Guigues basis for exact rules then contains exactly one rule
``P → h(P) \\ P`` per frequent pseudo-closed itemset ``P``.

The definition is recursive but well-founded (the condition only refers to
strictly smaller pseudo-closed sets), so the computation processes the
frequent itemsets in non-decreasing cardinality and maintains the list of
pseudo-closed sets discovered so far:

    for each frequent itemset ``I`` in size order:
        if ``I`` is closed: skip
        if for every already-found pseudo-closed ``P ⊂ I``: ``h(P) ⊆ I``:
            record ``I`` as pseudo-closed

The empty itemset needs explicit care: it is always frequent (support
``|O|``) and it is pseudo-closed exactly when it is not closed, i.e. when
some item belongs to every object.  Standard Apriori output does not list
the empty itemset, so the function below always considers it first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from .families import ClosedItemsetFamily, ItemsetFamily
from .itemset import Itemset

__all__ = ["PseudoClosedItemset", "frequent_pseudo_closed_itemsets"]


@dataclass(frozen=True, order=True)
class PseudoClosedItemset:
    """A frequent pseudo-closed itemset together with its closure and support.

    Attributes
    ----------
    itemset:
        The pseudo-closed itemset ``P`` itself.
    closure:
        Its Galois closure ``h(P)`` (a frequent closed itemset, strictly
        larger than ``P`` since ``P`` is not closed).
    support_count:
        Absolute support of ``P`` — which equals the support of ``h(P)``,
        by the fundamental support-of-closure property.
    """

    itemset: Itemset
    closure: Itemset
    support_count: int

    def __post_init__(self) -> None:
        if not self.itemset.is_proper_subset(self.closure):
            raise InvalidParameterError(
                f"a pseudo-closed itemset must be strictly contained in its closure; "
                f"got {self.itemset} with closure {self.closure}"
            )


def frequent_pseudo_closed_itemsets(
    frequent: ItemsetFamily,
    closed: ClosedItemsetFamily,
) -> list[PseudoClosedItemset]:
    """Compute the frequent pseudo-closed itemsets of a mined context.

    Parameters
    ----------
    frequent:
        Every frequent itemset with its support (Apriori output).  The
        family must be downward closed and mined at the same threshold as
        *closed*; the empty itemset may be omitted (it is handled
        explicitly).
    closed:
        The frequent closed itemsets (Close / A-Close / CHARM output), used
        both to test closedness and to obtain closures.

    Returns
    -------
    list[PseudoClosedItemset]
        The pseudo-closed itemsets in canonical (size, lexicographic)
        order, each with its closure and support.

    Notes
    -----
    The number of returned itemsets equals the number of rules of the
    Duquenne-Guigues basis — the minimum possible number of exact rules,
    by the classical result of Guigues & Duquenne (1986).
    """
    if frequent.n_objects != closed.n_objects:
        raise InvalidParameterError(
            "the frequent and closed families refer to different databases "
            f"({frequent.n_objects} vs {closed.n_objects} objects)"
        )

    found: list[PseudoClosedItemset] = []
    bottom = closed.bottom_closure()

    def consider(candidate: Itemset, support_count: int) -> None:
        # Closedness test first: membership in the closed family is O(1),
        # whereas looking up the closure scans the family — only pay that
        # cost for the (few) itemsets that turn out to be pseudo-closed.
        if candidate in closed:
            return  # closed, hence not pseudo-closed
        for previous in found:
            if previous.itemset.is_proper_subset(candidate) and not (
                previous.closure.issubset(candidate)
            ):
                return
        if not candidate:
            # The closure of the empty itemset is the set of items common to
            # every object; ``closure_of`` cannot be used here because the
            # miners never list h(∅) as a family member when it is empty.
            closure = bottom
        else:
            closure = closed.closure_of(candidate)
        if closure is None:
            # Not covered by any frequent closed itemset: the candidate is
            # not frequent at the closed family's threshold — skip it (this
            # only happens when the two families were mined at slightly
            # different thresholds; the guard keeps the basis sound).
            return
        if closure == candidate:
            return
        found.append(
            PseudoClosedItemset(
                itemset=candidate, closure=closure, support_count=support_count
            )
        )

    # The empty itemset first: frequent by definition, pseudo-closed iff not closed.
    empty = Itemset.empty()
    if bottom:
        consider(empty, frequent.n_objects)

    for candidate in frequent.itemsets():
        if not candidate:
            continue  # already handled explicitly
        consider(candidate, frequent.support_count(candidate))

    return sorted(found, key=lambda p: p.itemset)
