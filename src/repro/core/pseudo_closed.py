"""Frequent pseudo-closed itemsets (the antecedents of the Duquenne-Guigues basis).

Theorem 1 of the paper defines a *frequent pseudo-closed itemset* as a
frequent itemset ``P`` that is **not** closed and that **contains the
closure of every frequent pseudo-closed itemset strictly included in it**.
The Duquenne-Guigues basis for exact rules then contains exactly one rule
``P → h(P) \\ P`` per frequent pseudo-closed itemset ``P``.

The definition is recursive but well-founded (the condition only refers to
strictly smaller pseudo-closed sets), so the computation processes the
frequent itemsets in non-decreasing cardinality and maintains the list of
pseudo-closed sets discovered so far:

    for each frequent itemset ``I`` in size order:
        if ``I`` is closed: skip
        if for every already-found pseudo-closed ``P ⊂ I``: ``h(P) ⊆ I``:
            record ``I`` as pseudo-closed

The inner condition used to be an ``O(|frequent| · |found|)`` loop of
per-pair Python subset calls; it now runs against the packed
itemset/closure masks of the sets found so far, batched one cardinality
level at a time: only strictly smaller pseudo-closed sets can influence
a candidate, so within a level the comparison prefix is fixed and the
whole level is tested in a handful of word-wise compares (blocked so
the bool temporaries stay bounded).  The pre-vectorisation code is kept
as :func:`frequent_pseudo_closed_itemsets_reference`, the oracle of the
equivalence tests.

The empty itemset needs explicit care: it is always frequent (support
``|O|``) and it is pseudo-closed exactly when it is not closed, i.e. when
some item belongs to every object.  Standard Apriori output does not list
the empty itemset, so the functions below always consider it first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .families import ClosedItemsetFamily, ItemsetFamily
from .itemset import Itemset

__all__ = [
    "PseudoClosedItemset",
    "frequent_pseudo_closed_itemsets",
    "frequent_pseudo_closed_itemsets_reference",
]


@dataclass(frozen=True, order=True)
class PseudoClosedItemset:
    """A frequent pseudo-closed itemset together with its closure and support.

    Attributes
    ----------
    itemset:
        The pseudo-closed itemset ``P`` itself.
    closure:
        Its Galois closure ``h(P)`` (a frequent closed itemset, strictly
        larger than ``P`` since ``P`` is not closed).
    support_count:
        Absolute support of ``P`` — which equals the support of ``h(P)``,
        by the fundamental support-of-closure property.
    """

    itemset: Itemset
    closure: Itemset
    support_count: int

    def __post_init__(self) -> None:
        if not self.itemset.is_proper_subset(self.closure):
            raise InvalidParameterError(
                f"a pseudo-closed itemset must be strictly contained in its closure; "
                f"got {self.itemset} with closure {self.closure}"
            )


def _check_same_database(frequent: ItemsetFamily, closed: ClosedItemsetFamily) -> None:
    if frequent.n_objects != closed.n_objects:
        raise InvalidParameterError(
            "the frequent and closed families refer to different databases "
            f"({frequent.n_objects} vs {closed.n_objects} objects)"
        )


#: Bound (in matrix cells) on the candidate x found bool temporaries of
#: the level-batched violation pass.
_LEVEL_BLOCK_CELLS = 1 << 22


class _FoundMasks:
    """Growing packed-mask store of the pseudo-closed sets found so far.

    Keeps two aligned uint64 blocks — the itemsets ``P`` and their
    closures ``h(P)`` — with capacity doubling, so a whole cardinality
    level of candidates is tested in one vectorised pass over the live
    prefix.
    """

    def __init__(self, n_words: int) -> None:
        self._n_words = n_words
        self._itemsets = np.zeros((8, n_words), dtype=np.uint64)
        self._closures = np.zeros((8, n_words), dtype=np.uint64)
        self.count = 0

    def append(self, itemset_words: np.ndarray, closure_words: np.ndarray) -> None:
        if self.count == len(self._itemsets):
            grown = max(16, 2 * len(self._itemsets))
            for name in ("_itemsets", "_closures"):
                block = np.zeros((grown, self._n_words), dtype=np.uint64)
                block[: self.count] = getattr(self, name)[: self.count]
                setattr(self, name, block)
        self._itemsets[self.count] = itemset_words
        self._closures[self.count] = closure_words
        self.count += 1

    def level_violations(self, candidate_words: np.ndarray, prefix: int) -> np.ndarray:
        """Per-candidate flag: some found ``P ⊂ candidate``, ``h(P) ⊄ candidate``.

        *candidate_words* holds one cardinality level of packed candidate
        rows; *prefix* restricts the test to the strictly-smaller found
        entries (so the subset test needs no properness check).  The
        whole level is answered with word-wise compares against the
        prefix, in row blocks bounded by :data:`_LEVEL_BLOCK_CELLS`.
        """
        n_candidates = len(candidate_words)
        out = np.zeros(n_candidates, dtype=bool)
        if not prefix or not n_candidates:
            return out
        itemsets = self._itemsets[:prefix]
        closures = self._closures[:prefix]
        block = max(1, _LEVEL_BLOCK_CELLS // max(1, prefix))
        for start in range(0, n_candidates, block):
            rows = candidate_words[start : start + block]
            contained = np.ones((len(rows), prefix), dtype=bool)
            closure_ok = np.ones((len(rows), prefix), dtype=bool)
            for word in range(self._n_words):
                column = rows[:, word][:, None]
                contained &= (column & itemsets[None, :, word]) == itemsets[
                    None, :, word
                ]
                closure_ok &= (column & closures[None, :, word]) == closures[
                    None, :, word
                ]
            out[start : start + len(rows)] = np.any(contained & ~closure_ok, axis=1)
        return out


def frequent_pseudo_closed_itemsets(
    frequent: ItemsetFamily,
    closed: ClosedItemsetFamily,
) -> list[PseudoClosedItemset]:
    """Compute the frequent pseudo-closed itemsets of a mined context.

    Parameters
    ----------
    frequent:
        Every frequent itemset with its support (Apriori output).  The
        family must be downward closed and mined at the same threshold as
        *closed*; the empty itemset may be omitted (it is handled
        explicitly).
    closed:
        The frequent closed itemsets (Close / A-Close / CHARM output), used
        both to test closedness and to obtain closures.

    Returns
    -------
    list[PseudoClosedItemset]
        The pseudo-closed itemsets in canonical (size, lexicographic)
        order, each with its closure and support.

    Notes
    -----
    The number of returned itemsets equals the number of rules of the
    Duquenne-Guigues basis — the minimum possible number of exact rules,
    by the classical result of Guigues & Duquenne (1986).
    """
    from .rulearrays import pack_itemset_words, pack_itemsets_into, sorted_universe

    _check_same_database(frequent, closed)

    candidates = frequent.itemsets()  # canonical: non-decreasing cardinality
    bottom = closed.bottom_closure()
    universe = sorted_universe(
        [item for candidate in candidates for item in candidate]
        + [item for member in closed for item in member]
        + list(bottom)
    )
    item_position = {item: position for position, item in enumerate(universe)}
    candidate_matrix = pack_itemsets_into(candidates, universe)
    n_words = candidate_matrix.n_words

    found_masks = _FoundMasks(n_words)
    found: list[PseudoClosedItemset] = []

    def record(
        candidate: Itemset,
        closure: Itemset,
        support_count: int,
        candidate_words: np.ndarray,
    ) -> None:
        found.append(
            PseudoClosedItemset(
                itemset=candidate, closure=closure, support_count=support_count
            )
        )
        found_masks.append(
            candidate_words, pack_itemset_words(closure, item_position, n_words)
        )

    # The empty itemset first: frequent by definition, pseudo-closed iff
    # not closed (iff h(∅) is non-empty).
    if bottom:
        record(
            Itemset.empty(),
            bottom,
            frequent.n_objects,
            np.zeros(n_words, dtype=np.uint64),
        )

    sizes = np.array([len(candidate) for candidate in candidates], dtype=np.int64)
    start = 0
    n_candidates = len(candidates)
    while start < n_candidates:
        # One whole cardinality level at a time: only strictly smaller
        # pseudo-closed sets constrain a candidate, so the comparison
        # prefix is fixed across the level and the inner condition
        # vectorises over all of its candidates at once.
        stop = int(np.searchsorted(sizes, sizes[start], side="right"))
        prefix = found_masks.count
        violations = found_masks.level_violations(
            candidate_matrix.words[start:stop], prefix
        )
        for position in range(start, stop):
            candidate = candidates[position]
            if not candidate:
                continue  # already handled explicitly
            # Closedness test first: membership in the closed family is
            # O(1), whereas looking up the closure probes the packed
            # index — only pay that cost for the (few) itemsets that
            # turn out to be pseudo-closed.
            if candidate in closed:
                continue
            if violations[position - start]:
                continue
            closure = closed.closure_of(candidate)
            if closure is None:
                # Not covered by any frequent closed itemset: the candidate
                # is not frequent at the closed family's threshold — skip it
                # (this only happens when the two families were mined at
                # slightly different thresholds; the guard keeps the basis
                # sound).
                continue
            if closure == candidate:
                continue
            record(
                candidate,
                closure,
                frequent.support_count(candidate),
                candidate_matrix.words[position],
            )
        start = stop

    return sorted(found, key=lambda p: p.itemset)


def frequent_pseudo_closed_itemsets_reference(
    frequent: ItemsetFamily,
    closed: ClosedItemsetFamily,
) -> list[PseudoClosedItemset]:
    """The pre-vectorisation per-pair computation, kept as the test oracle.

    Same contract as :func:`frequent_pseudo_closed_itemsets`; the inner
    condition is the original ``O(|frequent| · |found|)`` Python loop.
    """
    _check_same_database(frequent, closed)

    found: list[PseudoClosedItemset] = []
    bottom = closed.bottom_closure()

    def consider(candidate: Itemset, support_count: int) -> None:
        if candidate in closed:
            return  # closed, hence not pseudo-closed
        for previous in found:
            if previous.itemset.is_proper_subset(candidate) and not (
                previous.closure.issubset(candidate)
            ):
                return
        if not candidate:
            # The closure of the empty itemset is the set of items common to
            # every object; ``closure_of`` cannot be used here because the
            # miners never list h(∅) as a family member when it is empty.
            closure = bottom
        else:
            closure = closed.closure_of(candidate)
        if closure is None:
            return
        if closure == candidate:
            return
        found.append(
            PseudoClosedItemset(
                itemset=candidate, closure=closure, support_count=support_count
            )
        )

    empty = Itemset.empty()
    if bottom:
        consider(empty, frequent.n_objects)

    for candidate in frequent.itemsets():
        if not candidate:
            continue  # already handled explicitly
        consider(candidate, frequent.support_count(candidate))

    return sorted(found, key=lambda p: p.itemset)
