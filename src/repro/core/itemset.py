"""Canonical immutable itemset type.

An *itemset* is a finite set of items drawn from the item universe ``I`` of
a mining context ``D = (O, I, R)``.  The whole library manipulates itemsets
constantly — as transaction contents, as closed sets, as rule antecedents
and consequents — so this module provides one canonical, hashable,
immutable representation: :class:`Itemset`.

Design notes
------------
* Items may be any hashable, orderable values (strings and integers in
  practice).  Within one itemset all items must be mutually comparable so
  that a deterministic canonical order exists; this keeps every report,
  test and benchmark reproducible run after run.
* :class:`Itemset` behaves like a ``frozenset`` for membership and algebra
  and like a sorted tuple for display and ordering.  The total order used
  by ``<`` on itemsets is *size first, then lexicographic on the sorted
  item tuple*, which is the order in which level-wise algorithms (Apriori,
  Close) naturally enumerate candidates.
* The empty itemset is a perfectly valid value (it is the bottom of the
  subset lattice and the antecedent of some Duquenne-Guigues rules), so no
  method treats it specially except where theory requires it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

__all__ = ["Item", "Itemset", "powerset", "proper_nonempty_subsets"]

Item = Hashable


def _sort_key(item: Any) -> tuple[str, str]:
    """Return a sort key that works for mixed item types.

    Items are usually homogeneous (all ``str`` or all ``int``), but user
    data occasionally mixes types; sorting on ``(type name, repr)`` keeps a
    deterministic order in every case without raising ``TypeError``.
    """
    return (type(item).__name__, repr(item))


class Itemset:
    """An immutable, hashable, canonically ordered set of items.

    Parameters
    ----------
    items:
        Any iterable of hashable items.  Duplicates are collapsed.

    Examples
    --------
    >>> a = Itemset(["b", "a", "c"])
    >>> a
    Itemset(['a', 'b', 'c'])
    >>> Itemset("ab") <= a
    True
    >>> (a - Itemset(["a"])).as_tuple()
    ('b', 'c')
    """

    __slots__ = ("_items", "_sorted", "_hash")

    def __init__(self, items: Iterable[Item] = ()) -> None:
        frozen = frozenset(items)
        object.__setattr__(self, "_items", frozen)
        try:
            ordered = tuple(sorted(frozen))
        except TypeError:
            ordered = tuple(sorted(frozen, key=_sort_key))
        object.__setattr__(self, "_sorted", ordered)
        object.__setattr__(self, "_hash", hash(frozen))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Itemset":
        """Return the empty itemset (bottom of the subset lattice)."""
        return _EMPTY

    @classmethod
    def of(cls, *items: Item) -> "Itemset":
        """Build an itemset from positional items: ``Itemset.of('a', 'b')``."""
        return cls(items)

    @classmethod
    def coerce(cls, value: "Itemset | Iterable[Item]") -> "Itemset":
        """Return *value* as an :class:`Itemset`, copying only if needed."""
        if isinstance(value, Itemset):
            return value
        return cls(value)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._sorted)

    def __contains__(self, item: Item) -> bool:
        return item in self._items

    def __bool__(self) -> bool:
        return bool(self._items)

    # ------------------------------------------------------------------
    # Equality, hashing and the level-wise total order
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Itemset):
            return self._items == other._items
        if isinstance(other, (frozenset, set)):
            return self._items == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def _order_key(self) -> tuple[int, tuple]:
        try:
            return (len(self._sorted), self._sorted)
        except TypeError:  # pragma: no cover - defensive
            return (len(self._sorted), tuple(map(_sort_key, self._sorted)))

    def __lt__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        if len(self) != len(other):
            return len(self) < len(other)
        try:
            return self._sorted < other._sorted
        except TypeError:
            return tuple(map(_sort_key, self._sorted)) < tuple(
                map(_sort_key, other._sorted)
            )

    def __le__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return self == other or self < other

    def __gt__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return other < self

    def __ge__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return other <= self

    # ------------------------------------------------------------------
    # Set algebra (always returns Itemset)
    # ------------------------------------------------------------------
    def union(self, *others: "Itemset | Iterable[Item]") -> "Itemset":
        """Return the union of this itemset with the given itemsets."""
        result = self._items
        for other in others:
            result = result | _as_frozenset(other)
        return Itemset(result)

    def intersection(self, *others: "Itemset | Iterable[Item]") -> "Itemset":
        """Return the intersection of this itemset with the given itemsets."""
        result = self._items
        for other in others:
            result = result & _as_frozenset(other)
        return Itemset(result)

    def difference(self, other: "Itemset | Iterable[Item]") -> "Itemset":
        """Return the items of this itemset not present in *other*."""
        return Itemset(self._items - _as_frozenset(other))

    def symmetric_difference(self, other: "Itemset | Iterable[Item]") -> "Itemset":
        """Return items present in exactly one of the two itemsets."""
        return Itemset(self._items ^ _as_frozenset(other))

    def __or__(self, other: "Itemset | Iterable[Item]") -> "Itemset":
        return self.union(other)

    def __and__(self, other: "Itemset | Iterable[Item]") -> "Itemset":
        return self.intersection(other)

    def __sub__(self, other: "Itemset | Iterable[Item]") -> "Itemset":
        return self.difference(other)

    def __xor__(self, other: "Itemset | Iterable[Item]") -> "Itemset":
        return self.symmetric_difference(other)

    def add(self, item: Item) -> "Itemset":
        """Return a new itemset with *item* added (itemsets are immutable)."""
        if item in self._items:
            return self
        return Itemset(self._items | {item})

    def remove(self, item: Item) -> "Itemset":
        """Return a new itemset with *item* removed; no-op if absent."""
        if item not in self._items:
            return self
        return Itemset(self._items - {item})

    # ------------------------------------------------------------------
    # Subset relations
    # ------------------------------------------------------------------
    def issubset(self, other: "Itemset | Iterable[Item]") -> bool:
        """Return ``True`` if every item of this set belongs to *other*."""
        return self._items <= _as_frozenset(other)

    def issuperset(self, other: "Itemset | Iterable[Item]") -> bool:
        """Return ``True`` if this set contains every item of *other*."""
        return self._items >= _as_frozenset(other)

    def is_proper_subset(self, other: "Itemset | Iterable[Item]") -> bool:
        """Return ``True`` if this set is a subset of *other* and not equal."""
        other_items = _as_frozenset(other)
        return self._items < other_items

    def is_proper_superset(self, other: "Itemset | Iterable[Item]") -> bool:
        """Return ``True`` if this set strictly contains *other*."""
        other_items = _as_frozenset(other)
        return self._items > other_items

    def isdisjoint(self, other: "Itemset | Iterable[Item]") -> bool:
        """Return ``True`` if the two itemsets share no item."""
        return self._items.isdisjoint(_as_frozenset(other))

    # ------------------------------------------------------------------
    # Enumeration helpers used by the mining algorithms
    # ------------------------------------------------------------------
    def subsets_of_size(self, size: int) -> Iterator["Itemset"]:
        """Yield every subset of the given *size* in canonical order."""
        from itertools import combinations

        if size < 0 or size > len(self._sorted):
            return
        for combo in combinations(self._sorted, size):
            yield Itemset(combo)

    def immediate_subsets(self) -> Iterator["Itemset"]:
        """Yield the ``len(self)`` subsets obtained by dropping one item."""
        for item in self._sorted:
            yield Itemset(self._items - {item})

    def proper_subsets(self) -> Iterator["Itemset"]:
        """Yield every proper subset (including the empty set)."""
        for size in range(len(self._sorted)):
            yield from self.subsets_of_size(size)

    def nonempty_proper_subsets(self) -> Iterator["Itemset"]:
        """Yield every non-empty proper subset, in size order."""
        for size in range(1, len(self._sorted)):
            yield from self.subsets_of_size(size)

    # ------------------------------------------------------------------
    # Conversions & display
    # ------------------------------------------------------------------
    def as_frozenset(self) -> frozenset:
        """Return the underlying ``frozenset`` of items."""
        return self._items

    def as_tuple(self) -> tuple:
        """Return the items as a canonically sorted tuple."""
        return self._sorted

    def __repr__(self) -> str:
        return f"Itemset({list(self._sorted)!r})"

    def __str__(self) -> str:
        if not self._sorted:
            return "{}"
        return "{" + ", ".join(str(item) for item in self._sorted) + "}"


def _as_frozenset(value: Itemset | Iterable[Item]) -> frozenset:
    if isinstance(value, Itemset):
        return value.as_frozenset()
    if isinstance(value, frozenset):
        return value
    return frozenset(value)


_EMPTY = Itemset(())


def powerset(items: Itemset | Iterable[Item]) -> Iterator[Itemset]:
    """Yield every subset of *items* (including empty and full) in size order.

    The enumeration order is deterministic: size first, lexicographic on the
    canonical item order second — the same total order as ``Itemset.__lt__``.
    """
    base = Itemset.coerce(items)
    for size in range(len(base) + 1):
        yield from base.subsets_of_size(size)


def proper_nonempty_subsets(items: Itemset | Iterable[Item]) -> Iterator[Itemset]:
    """Yield every non-empty proper subset of *items* in size order.

    This is the enumeration used when generating all association rules from
    a frequent itemset ``L``: each yielded subset is a candidate antecedent.
    """
    base = Itemset.coerce(items)
    yield from base.nonempty_proper_subsets()
