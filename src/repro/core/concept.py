"""Formal concepts of a mining context.

In formal concept analysis a *formal concept* of the context
``D = (O, I, R)`` is a pair ``(T, X)`` with ``T ⊆ O`` and ``X ⊆ I`` such
that ``f(T) = X`` and ``g(X) = T``: the extent ``T`` is exactly the set of
objects sharing the intent ``X``, and the intent is exactly the set of
items common to the extent.  The intents of the formal concepts are
precisely the closed itemsets used by the paper, and the support of a
closed itemset is the size of its extent.

This module provides a light value type, :class:`FormalConcept`, and an
exhaustive enumerator meant for small contexts (unit tests, lattice
drawings, pedagogy).  Large-scale mining of *frequent* closed itemsets is
the job of :mod:`repro.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from ..data.context import TransactionDatabase
from .closure import GaloisConnection
from .itemset import Itemset

__all__ = ["FormalConcept", "enumerate_concepts"]


@dataclass(frozen=True, order=True)
class FormalConcept:
    """A formal concept ``(extent, intent)`` of a mining context.

    Attributes
    ----------
    intent:
        The closed itemset ``X`` (items shared by every object of the
        extent).  Concepts sort by intent, which matches the canonical
        itemset order used everywhere else.
    extent:
        The row indices of the objects containing the intent.
    support_count:
        ``len(extent)`` — stored explicitly so reports do not need to
        re-measure it.
    """

    intent: Itemset
    extent: frozenset[int] = field(compare=False)
    support_count: int = field(compare=False)

    def support(self, n_objects: int) -> float:
        """Relative support of the concept given the context size."""
        if n_objects <= 0:
            return 0.0
        return self.support_count / n_objects

    def __str__(self) -> str:
        return f"Concept(intent={self.intent}, support_count={self.support_count})"


def enumerate_concepts(database: TransactionDatabase) -> Iterator[FormalConcept]:
    """Yield every formal concept of *database*, sorted by intent.

    The enumeration goes through the closed itemsets (intersection closure
    of the transaction contents, plus the full item universe when it has an
    empty cover) and pairs each with its extent.  Complexity is proportional
    to the number of concepts times the cost of a cover computation, which
    is perfectly fine for the example-sized contexts it is intended for.
    """
    connection = GaloisConnection(database)
    for intent in connection.closed_itemsets():
        extent = database.cover(intent)
        yield FormalConcept(
            intent=intent, extent=extent, support_count=len(extent)
        )
