"""The work-sharding executor seam of the packed-word kernels.

Every hot loop of the library — the blocked subset pass of
:func:`~repro.core.bitmatrix.packed_containment`, the gather/OR-reduce
transitive reduction, the batch-closure matmul of the numpy engine, the
streamed CSR rule emitters — is a sequence of *independent* block
computations over numpy arrays.  The inner ``np.bitwise_count`` /
``np.packbits`` / BLAS calls release the GIL, so plain threads already
scale them across cores; this module provides the one seam those kernels
share:

* :func:`resolve_workers` — turn a ``workers=`` argument (or the
  ``REPRO_NUM_WORKERS`` environment variable) into a concrete worker
  count;
* :class:`KernelExecutor` — ordered ``map`` and bounded-prefetch ordered
  ``imap`` over a serial or thread-pool backend;
* :func:`get_executor` — the per-worker-count executor cache, so the
  closure-engine path can resolve an executor per batch without churning
  thread pools.

Determinism contract: the executors only control *where* each block
computation runs, never what it computes or the order results are
consumed in.  ``map`` returns results in submission order and ``imap``
yields them in submission order, and every kernel routed through the
seam writes disjoint output slices — so any worker count produces output
byte-identical to the serial path (asserted by ``tests/test_parallel.py``
against the serial oracle for every registered basis).

The backend is deliberately a seam: a process-pool, numba or cython
kernel backend can replace :class:`_ThreadBackend` later without
touching any caller — they all go through :func:`get_executor`.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

from ..errors import InvalidParameterError

__all__ = [
    "WORKERS_ENV_VAR",
    "resolve_workers",
    "KernelExecutor",
    "get_executor",
    "shard_spans",
]

#: Environment variable that sets the default worker count process-wide
#: (e.g. ``REPRO_NUM_WORKERS=4 repro bases ...``); an explicit
#: ``workers=`` argument always wins over it.
WORKERS_ENV_VAR = "REPRO_NUM_WORKERS"

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a ``workers=`` argument to a concrete positive worker count.

    ``None`` consults :data:`WORKERS_ENV_VAR` and falls back to ``1``
    (serial — parallelism is strictly opt-in).  ``0`` means "all cores"
    (``os.cpu_count()``), both as an argument and as the environment
    value; negative counts raise.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise InvalidParameterError(
                f"invalid {WORKERS_ENV_VAR}={raw!r}; expected an integer "
                "worker count (0 = all cores)"
            ) from None
    workers = int(workers)
    if workers < 0:
        raise InvalidParameterError(
            f"workers must be >= 0 (0 = all cores), got {workers}"
        )
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def shard_spans(n: int, shard_size: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``(start, stop)`` spans.

    The shared task-decomposition helper of the sharded kernels; the
    spans partition the row space, so per-span writes into disjoint
    output slices compose to exactly the serial result.
    """
    if shard_size < 1:
        raise InvalidParameterError(f"shard_size must be positive, got {shard_size}")
    return [(start, min(start + shard_size, n)) for start in range(0, n, shard_size)]


class _SerialBackend:
    """In-line execution: zero scheduling overhead, the workers=1 path."""

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]

    def imap(self, fn: Callable, items: Iterable, prefetch: int) -> Iterator:
        return (fn(item) for item in items)


class _ThreadBackend:
    """Thread-pool execution over GIL-releasing numpy kernels."""

    def __init__(self, workers: int) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernel"
        )

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def imap(self, fn: Callable, items: Iterable, prefetch: int) -> Iterator:
        # Ordered bounded-prefetch imap: at most `prefetch` block results
        # are in flight, so a streamed consumer (RuleArrays.from_blocks)
        # keeps its bounded-memory guarantee while workers run ahead.
        def generate() -> Iterator:
            pending: deque = deque()
            iterator = iter(items)
            try:
                for item in iterator:
                    pending.append(self._pool.submit(fn, item))
                    if len(pending) >= prefetch:
                        yield pending.popleft().result()
                while pending:
                    yield pending.popleft().result()
            finally:
                for future in pending:
                    future.cancel()

        return generate()


class KernelExecutor:
    """Ordered block-task execution over a serial or thread-pool backend.

    Parameters
    ----------
    workers:
        Positive worker count (already resolved; see
        :func:`resolve_workers`).  ``1`` selects the in-line serial
        backend — no pool, no overhead — so the serial path stays exactly
        the pre-seam code path.
    """

    def __init__(self, workers: int) -> None:
        workers = int(workers)
        if workers < 1:
            raise InvalidParameterError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._backend = _SerialBackend() if workers == 1 else _ThreadBackend(workers)

    def __repr__(self) -> str:
        kind = "serial" if self.workers == 1 else "threads"
        return f"KernelExecutor(workers={self.workers}, backend={kind})"

    @property
    def is_serial(self) -> bool:
        """``True`` when tasks run in-line on the calling thread."""
        return self.workers == 1

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Iterable[_ItemT]
    ) -> list[_ResultT]:
        """Apply *fn* to every item; results in submission order."""
        return self._backend.map(fn, items)

    def imap(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Iterable[_ItemT],
        prefetch: int | None = None,
    ) -> Iterator[_ResultT]:
        """Lazily apply *fn*, yielding results in submission order.

        At most ``prefetch`` results (default ``2 * workers``) are
        computed ahead of the consumer, which is what lets the streamed
        rule emitters overlap block construction with block consumption
        without unbounding their peak memory.
        """
        if prefetch is None:
            prefetch = 2 * self.workers
        if prefetch < 1:
            raise InvalidParameterError(f"prefetch must be positive, got {prefetch}")
        return self._backend.imap(fn, items, prefetch)

    def shard_size(self, n: int, minimum: int = 1) -> int:
        """A span length that spreads ``n`` rows across the workers.

        Aims for a few spans per worker (so uneven spans still balance)
        while never going below *minimum* rows per span — tiny spans
        would drown the kernel time in scheduling overhead.
        """
        if n <= 0:
            return max(1, minimum)
        return max(minimum, -(-n // (4 * self.workers)))


#: Executor cache, one per resolved worker count — thread pools are kept
#: for the life of the process instead of being rebuilt per kernel call.
_EXECUTORS: dict[int, KernelExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def get_executor(workers: int | None = None) -> KernelExecutor:
    """The shared :class:`KernelExecutor` for a ``workers=`` argument.

    Resolves *workers* (``None`` → :data:`WORKERS_ENV_VAR` → serial) and
    returns the process-wide executor of that worker count, creating it
    on first use.  Passing an existing :class:`KernelExecutor` returns it
    unchanged, so kernels can accept either form.
    """
    if isinstance(workers, KernelExecutor):
        return workers
    count = resolve_workers(workers)
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(count)
        if executor is None:
            executor = KernelExecutor(count)
            _EXECUTORS[count] = executor
        return executor


def _reset_executors() -> None:
    """Drop the executor cache (test isolation helper, not public API)."""
    with _EXECUTORS_LOCK:
        for executor in _EXECUTORS.values():
            backend = executor._backend
            if isinstance(backend, _ThreadBackend):
                backend._pool.shutdown(wait=False)
        _EXECUTORS.clear()
