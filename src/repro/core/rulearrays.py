"""Columnar (structure-of-arrays) storage for association rules.

The rule bases of the paper are pure functions of the closed-set lattice,
which :mod:`repro.core.order` already holds as packed uint64 arrays — yet
until this module existed every basis was materialised one
:class:`~repro.core.rules.AssociationRule` Python object at a time.  On
rule-dense workloads (10⁵–10⁶ informative / Luxenburger rules) that
object layer dominated end-to-end time and memory.

:class:`RuleArrays` keeps a rule collection as five aligned columns:

* ``antecedents`` / ``consequents`` — packed item-mask rows
  (:class:`~repro.core.bitmatrix.BitMatrix`, bit ``i`` ⇔
  ``universe[i]``, same little-endian layout as the lattice masks);
* ``support`` / ``confidence`` — float64 columns;
* ``support_count`` — int64 column (``-1`` encodes "unknown", the
  array form of ``AssociationRule.support_count is None``).

Everything the experiment pipeline does per rule — dedup on the
``(antecedent, consequent)`` identity, canonical sorting, min-confidence
/ min-support / exact / approximate filtering, concatenation and the
key-based set operations — runs as one vectorised pass over the columns.
:class:`~repro.core.rules.RuleSet` wraps a ``RuleArrays`` through
``RuleSet.from_arrays`` and only materialises Python rule objects when a
caller actually iterates them, so the hot path (building a basis,
counting it, filtering it) never touches object space.

Rows are trusted to describe well-formed rules (disjoint sides,
non-empty consequent, probabilities in range) — the builders construct
them from lattice invariants that guarantee it, and
:meth:`RuleArrays.validate` re-checks the contract in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .bitmatrix import _BLOCK_CELLS, BitMatrix, _pack_rows, _words_for
from .constants import EPSILON
from .itemset import Item, Itemset, _sort_key

__all__ = [
    "RuleArrays",
    "pack_itemsets_into",
    "pack_itemset_words",
    "mask_to_itemset",
    "relative_supports",
    "resolve_block_rows",
    "sorted_universe",
]


def resolve_block_rows(block_rows: int | None, n_words: int) -> int:
    """The row-block size of a streamed rule expansion.

    ``None`` (the "auto" default of the streaming builders) sizes the
    block from the shared working-set budget of
    :mod:`repro.core.bitmatrix`: one block of packed antecedent +
    consequent rows stays around ``_BLOCK_CELLS`` bits however many
    rules the expansion produces, which is what keeps the peak *mask*
    memory of a 10⁷-rule build constant instead of output-sized.
    Explicit values pass through (floored at one row).
    """
    if block_rows is None:
        return max(1, _BLOCK_CELLS // max(64, n_words * 64))
    block_rows = int(block_rows)
    if block_rows < 1:
        raise InvalidParameterError(
            f"block_rows must be a positive row count, got {block_rows}"
        )
    return block_rows


def sorted_universe(items: Iterable[Item]) -> tuple[Item, ...]:
    """The canonical (ascending) item order used for bit positions.

    Shared by every packing consumer (rule columns, the closure-lookup
    index of :class:`~repro.core.families.ClosedItemsetFamily`, the
    pseudo-closed computation, generator masks) so that "bit ``i`` means
    ``universe[i]``" is one convention, not several.
    """
    distinct = set(items)
    try:
        return tuple(sorted(distinct))
    except TypeError:
        return tuple(sorted(distinct, key=_sort_key))


#: Backward-compatible alias (the helper predates its promotion to the
#: public packing API).
_sorted_universe = sorted_universe


def pack_itemset_words(
    itemset: Iterable[Item],
    item_position: dict,
    n_words: int,
) -> np.ndarray:
    """Pack one itemset into a length-``n_words`` uint64 little-endian row.

    The single-row companion of :func:`pack_itemsets_into` for callers
    that pack incrementally against a prebuilt ``item -> bit position``
    mapping (the pseudo-closed scan, the closure-lookup index).  Raises
    ``KeyError`` for an item missing from the mapping.
    """
    words = np.zeros(n_words, dtype=np.uint64)
    for item in itemset:
        position = item_position[item]
        words[position >> 6] |= np.uint64(1) << np.uint64(position & 63)
    return words


def relative_supports(counts: np.ndarray, n_objects: int) -> np.ndarray:
    """An absolute support-count column as float64 relative supports.

    The shared counts-to-probability convention of every array-native
    basis builder: plain division, with ``n_objects == 0`` mapping to an
    all-zero column (the value the object pipeline used per rule).
    """
    if n_objects:
        return counts.astype(np.float64) / n_objects
    return np.zeros(len(counts), dtype=np.float64)


def _words_for_universe(universe: Sequence[Item]) -> int:
    """Packed uint64 words per mask row over *universe*."""
    return _words_for(len(universe))


def pack_itemsets_into(
    itemsets: Sequence[Itemset],
    universe: Sequence[Item],
) -> BitMatrix:
    """Pack *itemsets* as rows of a :class:`BitMatrix` over a fixed universe.

    Bit ``i`` of a row is set iff the itemset contains ``universe[i]``.
    Raises when an itemset holds an item outside the universe (the packed
    row could not represent it).  The dense presence temporaries are
    bounded row blocks, so packing a million-rule collection never
    allocates an ``n x |universe|`` bool matrix.
    """
    index = {item: position for position, item in enumerate(universe)}
    n_cols = len(universe)
    out = BitMatrix.zeros(len(itemsets), n_cols)
    block = max(1, _BLOCK_CELLS // max(1, n_cols))
    for start in range(0, len(itemsets), block):
        chunk = itemsets[start : start + block]
        presence = np.zeros((len(chunk), n_cols), dtype=bool)
        for row, itemset in enumerate(chunk):
            for item in itemset:
                try:
                    presence[row, index[item]] = True
                except KeyError:
                    raise InvalidParameterError(
                        f"item {item!r} of {itemset} is outside the packing universe"
                    ) from None
        out.words[start : start + len(chunk)] = _pack_rows(presence)
    return out


def mask_to_itemset(matrix: BitMatrix, row: int, universe: Sequence[Item]) -> Itemset:
    """Materialise one packed row back into an :class:`Itemset`."""
    return Itemset(universe[position] for position in matrix.row_indices(row))


def _reversed_bit_rows(matrix: BitMatrix) -> np.ndarray:
    """Each row's bit string reversed over the full padded word width.

    Used by the canonical sort: for two masks of equal popcount, the
    ascending-index tuple of ``x`` precedes that of ``y`` exactly when
    the *lowest* differing bit belongs to ``x`` — i.e. when the
    bit-reversed row of ``x`` is the *larger* multiword integer.  Rows
    are processed in bounded blocks so the unpacked bool temporaries
    never exceed the shared working-set budget.
    """
    n_rows, n_words = matrix.words.shape
    out = np.empty((n_rows, n_words), dtype=np.uint64)
    if n_words == 0 or n_rows == 0:
        return out
    block = max(1, _BLOCK_CELLS // max(1, n_words * 64))
    for start in range(0, n_rows, block):
        raw = np.ascontiguousarray(matrix.words[start : start + block]).view(np.uint8)
        bits = np.unpackbits(raw, axis=1, bitorder="little")
        packed = np.packbits(bits[:, ::-1], axis=1, bitorder="little")
        out[start : start + bits.shape[0]] = np.ascontiguousarray(packed).view(
            np.uint64
        )
    return out


class RuleArrays:
    """A rule collection as aligned columns over a fixed item universe.

    Parameters
    ----------
    antecedents, consequents:
        Packed item-mask rows (one rule per row, same shape).
    universe:
        Items in canonical ascending order; bit ``i`` of every mask row
        refers to ``universe[i]``.
    support, confidence:
        Float64 columns (coerced and frozen).
    support_count:
        Int64 column; ``-1`` means the absolute count is unknown.
        ``None`` fills the column with ``-1``.
    """

    __slots__ = (
        "antecedents",
        "consequents",
        "universe",
        "support",
        "confidence",
        "support_count",
    )

    def __init__(
        self,
        antecedents: BitMatrix,
        consequents: BitMatrix,
        universe: Sequence[Item],
        support: np.ndarray,
        confidence: np.ndarray,
        support_count: np.ndarray | None = None,
    ) -> None:
        n = antecedents.n_rows
        if consequents.shape != antecedents.shape:
            raise InvalidParameterError(
                f"antecedent/consequent shape mismatch: {antecedents.shape} "
                f"vs {consequents.shape}"
            )
        if antecedents.n_cols != len(universe):
            raise InvalidParameterError(
                f"{antecedents.n_cols}-column masks cannot index a "
                f"{len(universe)}-item universe"
            )
        support = np.ascontiguousarray(support, dtype=np.float64)
        confidence = np.ascontiguousarray(confidence, dtype=np.float64)
        if support_count is None:
            support_count = np.full(n, -1, dtype=np.int64)
        else:
            support_count = np.ascontiguousarray(support_count, dtype=np.int64)
        for label, column in (
            ("support", support),
            ("confidence", confidence),
            ("support_count", support_count),
        ):
            if column.shape != (n,):
                raise InvalidParameterError(
                    f"{label} column has shape {column.shape}, expected ({n},)"
                )
        self.antecedents = antecedents
        self.consequents = consequents
        self.universe = tuple(universe)
        self.support = support
        self.confidence = confidence
        self.support_count = support_count
        # Freeze every column, mask words included: the arrays are handed
        # out through RuleSet.to_arrays / BuiltBasis.rule_arrays and may
        # back a lazily materialised RuleSet — a consumer writing into
        # them would silently corrupt answers already given.
        frozen = (
            support,
            confidence,
            support_count,
            antecedents.words,
            consequents.words,
        )
        for array in frozen:
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, universe: Sequence[Item] = ()) -> "RuleArrays":
        """A zero-rule collection over *universe*."""
        n_cols = len(universe)
        return cls(
            BitMatrix.zeros(0, n_cols),
            BitMatrix.zeros(0, n_cols),
            tuple(universe),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.int64),
        )

    @classmethod
    def from_rules(
        cls, rules: Iterable, universe: Sequence[Item] | None = None
    ) -> "RuleArrays":
        """Pack an iterable of :class:`AssociationRule` objects into columns.

        When *universe* is omitted it is derived from the rules' items in
        canonical order.  Row order is iteration order (the insertion
        order of a :class:`~repro.core.rules.RuleSet`).
        """
        rules = list(rules)
        if universe is None:
            universe = _sorted_universe(
                item for rule in rules for item in rule.itemset
            )
        antecedents = pack_itemsets_into([rule.antecedent for rule in rules], universe)
        consequents = pack_itemsets_into([rule.consequent for rule in rules], universe)
        support = np.array([rule.support for rule in rules], dtype=np.float64)
        confidence = np.array([rule.confidence for rule in rules], dtype=np.float64)
        counts = np.array(
            [
                -1 if rule.support_count is None else rule.support_count
                for rule in rules
            ],
            dtype=np.int64,
        )
        return cls(antecedents, consequents, universe, support, confidence, counts)

    @classmethod
    def from_blocks(
        cls,
        blocks: Iterable["RuleArrays"],
        universe: Sequence[Item],
        n_rows: int | None = None,
    ) -> "RuleArrays":
        """Assemble one collection from an iterator of row-block collections.

        The chunk-consuming counterpart of :meth:`iter_blocks`, and the
        assembly step of the streamed basis builders: every block must be
        packed over *universe* (the builders guarantee it; a mismatched
        block raises), and blocks are written in iteration order.

        ``n_rows``, when given, is a row-count *capacity*: the output
        columns are preallocated once and each block is copied straight
        into its slice, so beyond the finished output only one block is
        ever live — the bounded-memory path.  Blocks may undershoot the
        capacity (a streamed builder that filters rows per block); the
        surplus is trimmed at the end.  Without ``n_rows`` the blocks are
        collected and concatenated once.
        """
        universe = tuple(universe)
        if n_rows is None:
            collected = list(blocks)
            for block in collected:
                if block.universe != universe:
                    raise InvalidParameterError(
                        "blocks are packed over a different universe than the target"
                    )
            if not collected:
                return cls.empty(universe)
            return cls(
                BitMatrix(
                    np.concatenate([b.antecedents.words for b in collected]),
                    len(universe),
                ),
                BitMatrix(
                    np.concatenate([b.consequents.words for b in collected]),
                    len(universe),
                ),
                universe,
                np.concatenate([b.support for b in collected]),
                np.concatenate([b.confidence for b in collected]),
                np.concatenate([b.support_count for b in collected]),
            )
        n_words = _words_for_universe(universe)
        antecedents = np.zeros((n_rows, n_words), dtype=np.uint64)
        consequents = np.zeros((n_rows, n_words), dtype=np.uint64)
        support = np.zeros(n_rows, dtype=np.float64)
        confidence = np.zeros(n_rows, dtype=np.float64)
        support_count = np.full(n_rows, -1, dtype=np.int64)
        filled = 0
        for block in blocks:
            if block.universe != universe:
                raise InvalidParameterError(
                    "blocks are packed over a different universe than the target"
                )
            stop = filled + len(block)
            if stop > n_rows:
                raise InvalidParameterError(
                    f"blocks hold more than the declared capacity of {n_rows} rows"
                )
            antecedents[filled:stop] = block.antecedents.words
            consequents[filled:stop] = block.consequents.words
            support[filled:stop] = block.support
            confidence[filled:stop] = block.confidence
            support_count[filled:stop] = block.support_count
            filled = stop
        if filled < n_rows:
            # Copy the filled prefix so the trimmed rows do not keep the
            # full-capacity buffers alive through a view.
            antecedents = antecedents[:filled].copy()
            consequents = consequents[:filled].copy()
            support = support[:filled].copy()
            confidence = confidence[:filled].copy()
            support_count = support_count[:filled].copy()
        return cls(
            BitMatrix(antecedents, len(universe)),
            BitMatrix(consequents, len(universe)),
            universe,
            support,
            confidence,
            support_count,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Return the number of rules held in the columns."""
        return self.antecedents.n_rows

    def __repr__(self) -> str:
        """Summarize the store as rule and universe counts."""
        return f"RuleArrays({len(self)} rules, {len(self.universe)} items)"

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the columns."""
        return (
            self.antecedents.words.nbytes
            + self.consequents.words.nbytes
            + self.support.nbytes
            + self.confidence.nbytes
            + self.support_count.nbytes
        )

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "RuleArrays":
        """A new collection holding the rows *indices*, in that order."""
        indices = np.asarray(indices)
        return RuleArrays(
            BitMatrix(self.antecedents.words[indices], self.antecedents.n_cols),
            BitMatrix(self.consequents.words[indices], self.consequents.n_cols),
            self.universe,
            self.support[indices],
            self.confidence[indices],
            self.support_count[indices],
        )

    def select(self, mask: np.ndarray) -> "RuleArrays":
        """The rows where the boolean *mask* is true, order preserved."""
        return self.take(np.nonzero(np.asarray(mask, dtype=bool))[0])

    def iter_blocks(self, block_rows: int | None = None) -> Iterator["RuleArrays"]:
        """Yield the collection as contiguous row blocks, in row order.

        The chunk-producing counterpart of :meth:`from_blocks`, used by
        consumers that stream a large collection out of process (the
        on-disk store, the Arrow export) without ever slicing it into
        per-rule objects.  Each block is a plain slice of the columns —
        zero-copy for the numpy stat columns.  ``block_rows=None`` picks
        the shared auto size (see :func:`resolve_block_rows`).
        """
        block_rows = resolve_block_rows(block_rows, self.antecedents.n_words)
        for start in range(0, len(self), block_rows):
            stop = min(start + block_rows, len(self))
            yield RuleArrays(
                BitMatrix(self.antecedents.words[start:stop], self.antecedents.n_cols),
                BitMatrix(self.consequents.words[start:stop], self.consequents.n_cols),
                self.universe,
                self.support[start:stop],
                self.confidence[start:stop],
                self.support_count[start:stop],
            )

    # ------------------------------------------------------------------
    # Vectorised filters (same EPSILON semantics as RuleSet)
    # ------------------------------------------------------------------
    def exact_mask(self) -> np.ndarray:
        """Boolean column: confidence-1 rules."""
        return self.confidence >= 1.0 - EPSILON

    def exact(self) -> "RuleArrays":
        """The 100 %-confidence rules."""
        return self.select(self.exact_mask())

    def approximate(self) -> "RuleArrays":
        """The rules with confidence strictly below 1."""
        return self.select(~self.exact_mask())

    def with_min_confidence(self, minconf: float) -> "RuleArrays":
        """The rules whose confidence is at least *minconf*."""
        return self.select(self.confidence >= minconf - EPSILON)

    def with_min_support(self, minsup: float) -> "RuleArrays":
        """The rules whose support is at least *minsup*."""
        return self.select(self.support >= minsup - EPSILON)

    # ------------------------------------------------------------------
    # Keys, dedup, canonical sort
    # ------------------------------------------------------------------
    def key_view(self) -> np.ndarray:
        """The ``(antecedent, consequent)`` identity per row as a void column.

        Two rows compare equal exactly when they describe the same
        implication, which makes the view directly usable with
        ``np.unique`` / ``np.isin`` for the set operations.
        """
        combined = np.concatenate(
            [self.antecedents.words, self.consequents.words], axis=1
        )
        if combined.shape[1] == 0:
            # Empty universe: every row is the (degenerate) same key.
            return np.zeros(len(self), dtype=np.int64)
        flat = np.ascontiguousarray(combined)
        return flat.view(np.dtype((np.void, flat.shape[1] * 8))).reshape(-1)

    def deduplicated(self) -> "RuleArrays":
        """Drop duplicate keys, first occurrence wins, order preserved.

        Mirrors :class:`~repro.core.rules.RuleSet` insertion semantics.
        """
        keys = self.key_view()
        _, first = np.unique(keys, return_index=True)
        if first.size == len(self):
            return self
        return self.take(np.sort(first))

    def canonical_order(self) -> np.ndarray:
        """Row permutation sorting by the ``(antecedent, consequent)`` order.

        The order is exactly ``AssociationRule.__lt__``: antecedent first,
        consequent second, each compared as Itemsets (cardinality, then
        lexicographic on the ascending item tuple).  For equal-size masks
        the tuple comparison reduces to "the lowest differing bit belongs
        to the smaller set", which the bit-reversed rows expose as a
        plain descending multiword integer comparison — so the whole sort
        is one ``np.lexsort`` over numeric columns.
        """
        keys: list[np.ndarray] = []

        def push(matrix: BitMatrix) -> None:
            """Append one mask matrix's lexsort key columns to *keys*."""
            reversed_rows = _reversed_bit_rows(matrix)
            # lexsort is ascending; ascending itemset order is descending
            # on the reversed rows, so complement every word.  Least
            # significant word first — lexsort's last key is primary.
            for word in range(reversed_rows.shape[1]):
                keys.append(~reversed_rows[:, word])
            keys.append(matrix.row_counts())

        push(self.consequents)
        push(self.antecedents)
        if not keys:
            return np.arange(len(self))
        return np.lexsort(keys)

    def sorted_canonically(self) -> "RuleArrays":
        """The rows reordered into the canonical rule order."""
        return self.take(self.canonical_order())

    # ------------------------------------------------------------------
    # Concatenation and set operations on rule identities
    # ------------------------------------------------------------------
    def same_universe(self, other: "RuleArrays") -> bool:
        """Whether both collections share the same packing universe."""
        return self.universe == other.universe

    def project_to(self, universe: Sequence[Item]) -> "RuleArrays":
        """Re-pack the masks over a different universe.

        Column bits are permuted to the target's positions (blocked
        unpack/scatter/repack, bounded temporaries).  Items of the
        current universe missing from the target are allowed only when
        no rule uses them — their (all-zero) columns are dropped, which
        is what makes ``project_to`` round-trip through a padded
        universe; a set bit without a target position raises.
        """
        universe = tuple(universe)
        if universe == self.universe:
            return self
        index = {item: position for position, item in enumerate(universe)}
        mapping = np.array(
            [index.get(item, -1) for item in self.universe], dtype=np.intp
        )
        kept = mapping >= 0
        dropped = np.nonzero(~kept)[0]

        def remap(matrix: BitMatrix) -> BitMatrix:
            """Re-index one mask matrix onto the target universe."""
            n_rows = matrix.n_rows
            out = BitMatrix.zeros(n_rows, len(universe))
            if n_rows == 0 or matrix.n_cols == 0:
                return out
            block = max(1, _BLOCK_CELLS // max(1, max(len(universe), matrix.n_cols)))
            for start in range(0, n_rows, block):
                raw = np.ascontiguousarray(matrix.words[start : start + block]).view(
                    np.uint8
                )
                bits = np.unpackbits(raw, axis=1, bitorder="little")
                bits = bits[:, : matrix.n_cols].astype(bool)
                if dropped.size and bits[:, dropped].any():
                    used = dropped[bits[:, dropped].any(axis=0)][0]
                    raise InvalidParameterError(
                        f"target universe is missing item "
                        f"{self.universe[int(used)]!r}, which rules still use"
                    )
                scattered = np.zeros((bits.shape[0], len(universe)), dtype=bool)
                scattered[:, mapping[kept]] = bits[:, kept]
                out.words[start : start + bits.shape[0]] = BitMatrix.from_dense(
                    scattered
                ).words
            return out

        return RuleArrays(
            remap(self.antecedents),
            remap(self.consequents),
            universe,
            self.support,
            self.confidence,
            self.support_count,
        )

    def _aligned_pair(self, other: "RuleArrays") -> tuple["RuleArrays", "RuleArrays"]:
        if self.same_universe(other):
            return self, other
        merged = _sorted_universe(self.universe + other.universe)
        return self.project_to(merged), other.project_to(merged)

    def concat(self, other: "RuleArrays") -> "RuleArrays":
        """Row-wise concatenation (duplicates kept; universes aligned)."""
        first, second = self._aligned_pair(other)
        return RuleArrays(
            BitMatrix(
                np.concatenate([first.antecedents.words, second.antecedents.words]),
                first.antecedents.n_cols,
            ),
            BitMatrix(
                np.concatenate([first.consequents.words, second.consequents.words]),
                first.consequents.n_cols,
            ),
            first.universe,
            np.concatenate([first.support, second.support]),
            np.concatenate([first.confidence, second.confidence]),
            np.concatenate([first.support_count, second.support_count]),
        )

    def union(self, other: "RuleArrays") -> "RuleArrays":
        """Key-based union; on duplicate keys this collection's row wins."""
        return self.concat(other).deduplicated()

    def difference(self, other: "RuleArrays") -> "RuleArrays":
        """The rows of *self* whose key does not appear in *other*."""
        first, second = self._aligned_pair(other)
        present = np.isin(first.key_view(), second.key_view())
        return first.select(~present)

    def intersection(self, other: "RuleArrays") -> "RuleArrays":
        """The rows of *self* whose key appears in *other* (self's stats)."""
        first, second = self._aligned_pair(other)
        present = np.isin(first.key_view(), second.key_view())
        return first.select(present)

    # ------------------------------------------------------------------
    # Column reductions (the summary statistics of the reports)
    # ------------------------------------------------------------------
    def count_exact(self) -> int:
        """Number of confidence-1 rules."""
        return int(np.count_nonzero(self.exact_mask()))

    def count_approximate(self) -> int:
        """Number of rules with confidence strictly below 1."""
        return len(self) - self.count_exact()

    def average_confidence(self) -> float:
        """Mean confidence (0 for an empty collection)."""
        return float(self.confidence.mean()) if len(self) else 0.0

    def average_support(self) -> float:
        """Mean support (0 for an empty collection)."""
        return float(self.support.mean()) if len(self) else 0.0

    # ------------------------------------------------------------------
    # Object materialisation (the lazy view RuleSet exposes)
    # ------------------------------------------------------------------
    def rule_at(self, row: int):
        """Materialise one row as an :class:`AssociationRule`."""
        from .rules import AssociationRule

        count = int(self.support_count[row])
        return AssociationRule(
            mask_to_itemset(self.antecedents, row, self.universe),
            mask_to_itemset(self.consequents, row, self.universe),
            support=float(self.support[row]),
            confidence=float(self.confidence[row]),
            support_count=None if count < 0 else count,
        )

    def iter_rules(self) -> Iterator:
        """Materialise every row, in row order."""
        for row in range(len(self)):
            yield self.rule_at(row)

    # ------------------------------------------------------------------
    # Contract checking (tests)
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Re-check the well-formed-rule contract; returns violations."""
        problems: list[str] = []
        overlap = (self.antecedents.words & self.consequents.words).any(axis=1)
        for row in np.nonzero(overlap)[0]:
            problems.append(f"row {row}: antecedent and consequent overlap")
        empty = self.consequents.row_counts() == 0
        for row in np.nonzero(empty)[0]:
            problems.append(f"row {row}: empty consequent")
        bad_support = (self.support < -EPSILON) | (self.support > 1.0 + EPSILON)
        for row in np.nonzero(bad_support)[0]:
            problems.append(f"row {row}: support {self.support[row]} out of range")
        bad_conf = (self.confidence <= 0.0) | (self.confidence > 1.0 + EPSILON)
        for row in np.nonzero(bad_conf)[0]:
            problems.append(
                f"row {row}: confidence {self.confidence[row]} out of range"
            )
        return problems
