"""The Galois connection and its closure operator.

Section 2 of the paper defines, for a mining context ``D = (O, I, R)``:

* ``f(T)`` for ``T ⊆ O`` — the items common to all objects of ``T``;
* ``g(X)`` for ``X ⊆ I`` — the objects related to all items of ``X``;
* the closure operator ``h = f ∘ g`` which associates with ``X`` the
  maximal set of items common to all objects containing ``X``.

:class:`GaloisConnection` packages these three applications over a
:class:`~repro.data.context.TransactionDatabase` and adds the classical
derived notions: formal concepts, closed itemsets and the closure system.
The heavy lifting (cover computation, intersection of transactions) is
delegated to the closure engines of :mod:`repro.engine` through the
database, including batch variants that close or count many itemsets in
one vectorised pass.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..data.context import TransactionDatabase
from .itemset import Item, Itemset

__all__ = ["GaloisConnection"]


class GaloisConnection:
    """The Galois connection ``(f, g)`` of a mining context.

    Parameters
    ----------
    database:
        The transaction database (mining context) the connection is
        defined on.

    Notes
    -----
    ``h = f ∘ g`` is a *closure operator* on itemsets: it is extensive
    (``X ⊆ h(X)``), monotone (``X ⊆ Y ⇒ h(X) ⊆ h(Y)``) and idempotent
    (``h(h(X)) = h(X)``).  Dually, ``g ∘ f`` is a closure operator on
    object sets.  These properties are exercised by the property-based
    test-suite (`tests/test_closure_properties.py`).
    """

    def __init__(self, database: TransactionDatabase) -> None:
        self._db = database

    @property
    def database(self) -> TransactionDatabase:
        """The underlying mining context."""
        return self._db

    # ------------------------------------------------------------------
    # The two applications and the two closure operators
    # ------------------------------------------------------------------
    def itemset_extent(self, items: Itemset | Iterable[Item]) -> frozenset[int]:
        """``g(X)``: objects (row indices) related to every item of ``X``."""
        return self._db.cover(items)

    def objectset_intent(self, objects: Iterable[int]) -> Itemset:
        """``f(T)``: items related to every object of ``T``."""
        return self._db.common_items(objects)

    def itemset_closure(self, items: Itemset | Iterable[Item]) -> Itemset:
        """``h(X) = f(g(X))``: the Galois closure of an itemset."""
        return self._db.closure(items)

    def itemset_closures(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[Itemset]:
        """Batch ``h(X)`` over many itemsets in one engine pass."""
        return self._db.closures(itemsets)

    def itemset_supports(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[int]:
        """Batch ``|g(X)|`` over many itemsets in one engine pass."""
        return self._db.supports(itemsets)

    def itemset_extents(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[frozenset[int]]:
        """Batch ``g(X)`` over many itemsets in one engine pass."""
        return self._db.extents(itemsets)

    def objectset_closure(self, objects: Iterable[int]) -> frozenset[int]:
        """``g(f(T))``: the Galois closure of a set of objects."""
        return self._db.cover(self._db.common_items(objects))

    # Short aliases matching the paper's notation --------------------------------
    def f(self, objects: Iterable[int]) -> Itemset:
        """Alias of :meth:`objectset_intent` (the paper's ``f``)."""
        return self.objectset_intent(objects)

    def g(self, items: Itemset | Iterable[Item]) -> frozenset[int]:
        """Alias of :meth:`itemset_extent` (the paper's ``g``)."""
        return self.itemset_extent(items)

    def h(self, items: Itemset | Iterable[Item]) -> Itemset:
        """Alias of :meth:`itemset_closure` (the paper's ``h = f ∘ g``)."""
        return self.itemset_closure(items)

    # ------------------------------------------------------------------
    # Derived notions
    # ------------------------------------------------------------------
    def is_closed_itemset(self, items: Itemset | Iterable[Item]) -> bool:
        """Return ``True`` iff ``h(X) = X``."""
        itemset = Itemset.coerce(items)
        return self.itemset_closure(itemset) == itemset

    def support_count(self, items: Itemset | Iterable[Item]) -> int:
        """Absolute support of an itemset, ``|g(X)|``."""
        return self._db.support_count(items)

    def support(self, items: Itemset | Iterable[Item]) -> float:
        """Relative support of an itemset, ``|g(X)| / |O|``."""
        return self._db.support(items)

    def closed_itemsets(self) -> Iterator[Itemset]:
        """Yield every closed itemset of the context (no support threshold).

        The closed itemsets are exactly the intents of the formal concepts;
        they are enumerated by closing the intersection closure system of
        the transactions.  This exhaustive enumeration is intended for
        small contexts (tests, examples, lattice drawings); use the Close /
        A-Close / CHARM miners for frequent closed itemsets on real data.
        """
        # Every closed itemset with a non-empty cover is an intersection of a
        # non-empty family of transactions, and conversely; so the family of
        # closed sets is the transaction contents closed under intersection.
        distinct = set(self._db.transactions())
        closed: set[Itemset] = set(distinct)
        pending = list(closed)
        while pending:
            current = pending.pop()
            for row in distinct:
                candidate = current.intersection(row)
                if candidate not in closed:
                    closed.add(candidate)
                    pending.append(candidate)
        # The full item universe is closed by convention (closure of any
        # itemset with an empty cover), matching ``TransactionDatabase.closure``.
        closed.add(self._db.item_universe)
        yield from sorted(closed)

    def concept_count(self) -> int:
        """Number of formal concepts (closed itemsets) of the context."""
        return sum(1 for _ in self.closed_itemsets())
