"""The Duquenne-Guigues basis for exact association rules (Theorem 1).

The Duquenne-Guigues basis (Guigues & Duquenne, 1986), adapted to frequent
itemsets by the paper, is the set of rules

    ``P → h(P) \\ P``   for every frequent pseudo-closed itemset ``P``,

each with confidence 1 and support equal to the support of ``h(P)``.  It
is a *minimum-size* generating set for the exact association rules: every
exact rule between frequent itemsets can be deduced from it (see
:mod:`repro.core.derivation`), and no strictly smaller set of exact rules
has that property.

The basis is represented by :class:`DuquenneGuiguesBasis`, which keeps the
underlying pseudo-closed structure around so that derivation and the
experiment reports can use it directly.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .bitmatrix import BitMatrix
from .families import ClosedItemsetFamily, ItemsetFamily
from .itemset import Itemset
from .pseudo_closed import PseudoClosedItemset, frequent_pseudo_closed_itemsets
from .rulearrays import (
    RuleArrays,
    pack_itemsets_into,
    relative_supports,
    sorted_universe,
)
from .rules import AssociationRule, RuleSet

__all__ = ["DuquenneGuiguesBasis", "build_duquenne_guigues_basis"]


class DuquenneGuiguesBasis:
    """The Duquenne-Guigues basis of exact rules of a mined context.

    Parameters
    ----------
    pseudo_closed:
        The frequent pseudo-closed itemsets with their closures and
        supports (one rule per entry).
    n_objects:
        Number of objects of the originating database (to express rule
        supports relatively).
    """

    def __init__(
        self,
        pseudo_closed: list[PseudoClosedItemset],
        n_objects: int,
    ) -> None:
        self._pseudo_closed = sorted(pseudo_closed, key=lambda p: p.itemset)
        self._n_objects = n_objects
        self._rules = RuleSet.from_arrays(self._build_arrays())

    def _build_arrays(self) -> RuleArrays:
        """One rule column per pseudo-closed record, packed in one pass.

        The antecedents are the pseudo-closed itemsets themselves and the
        consequents ``h(P) \\ P`` — a single AND-NOT over the two packed
        mask blocks; no per-rule Python object is built.
        """
        entries = self._pseudo_closed
        universe = sorted_universe(
            item for entry in entries for item in entry.closure
        )
        antecedents = pack_itemsets_into([entry.itemset for entry in entries], universe)
        closures = pack_itemsets_into([entry.closure for entry in entries], universe)
        counts = np.array([entry.support_count for entry in entries], dtype=np.int64)
        return RuleArrays(
            antecedents,
            BitMatrix(closures.words & ~antecedents.words, len(universe)),
            universe,
            relative_supports(counts, self._n_objects),
            np.ones(len(entries), dtype=np.float64),
            counts,
        )

    def iter_rules_reference(self) -> Iterator[AssociationRule]:
        """The pre-columnar object pipeline (oracle for tests/benchmarks)."""
        for entry in self._pseudo_closed:
            consequent = entry.closure.difference(entry.itemset)
            support = (
                entry.support_count / self._n_objects if self._n_objects else 0.0
            )
            yield AssociationRule(
                antecedent=entry.itemset,
                consequent=consequent,
                support=support,
                confidence=1.0,
                support_count=entry.support_count,
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        """Number of objects of the originating database."""
        return self._n_objects

    @property
    def pseudo_closed_itemsets(self) -> list[PseudoClosedItemset]:
        """The pseudo-closed itemsets, one per rule, in canonical order."""
        return list(self._pseudo_closed)

    @property
    def rules(self) -> RuleSet:
        """The basis as a :class:`~repro.core.rules.RuleSet` of exact rules."""
        return self._rules

    @property
    def metadata(self) -> dict[str, object]:
        """Shape metadata for the reduction reports."""
        return {"pseudo_closed_itemsets": len(self._pseudo_closed)}

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        return f"DuquenneGuiguesBasis({len(self._rules)} rules)"

    # ------------------------------------------------------------------
    # Semantic closure under the basis (Armstrong-style inference)
    # ------------------------------------------------------------------
    def implied_closure(self, itemset: Itemset) -> Itemset:
        """Return the closure of *itemset* under the basis' implications.

        Starting from *itemset*, repeatedly apply every rule whose
        antecedent is included in the current set by adding its consequent,
        until a fixpoint is reached.  For every frequent itemset this
        fixpoint equals the Galois closure ``h(itemset)`` — that equality
        is exactly what makes the basis a generating set for the exact
        rules, and it is verified by the property-based tests.
        """
        current = Itemset.coerce(itemset)
        changed = True
        while changed:
            changed = False
            for rule in self._rules:
                if rule.antecedent.issubset(current) and not rule.consequent.issubset(
                    current
                ):
                    current = current.union(rule.consequent)
                    changed = True
        return current

    def derives(self, antecedent: Itemset, consequent: Itemset) -> bool:
        """Return ``True`` if the exact rule ``antecedent → consequent`` follows.

        The rule is derivable iff the consequent is included in the
        implied closure of the antecedent.
        """
        return Itemset.coerce(consequent).issubset(
            self.implied_closure(Itemset.coerce(antecedent))
        )

    def is_non_redundant(self) -> bool:
        """Check that no rule of the basis is derivable from the others.

        This is the minimality property claimed by the paper ("minimal
        non-redundant sets of association rules"); it holds by construction
        for pseudo-closed antecedents and is re-verified here for tests.
        """
        for rule in self._rules:
            others = RuleSet(r for r in self._rules if r is not rule)
            reduced = DuquenneGuiguesBasis.__new__(DuquenneGuiguesBasis)
            reduced._pseudo_closed = []
            reduced._n_objects = self._n_objects
            reduced._rules = others
            if reduced.derives(rule.antecedent, rule.consequent):
                return False
        return True


def build_duquenne_guigues_basis(
    frequent: ItemsetFamily,
    closed: ClosedItemsetFamily,
) -> DuquenneGuiguesBasis:
    """Build the Duquenne-Guigues basis from mined itemset families.

    Parameters
    ----------
    frequent:
        All frequent itemsets with supports (Apriori output).
    closed:
        The frequent closed itemsets (Close / A-Close / CHARM output),
        mined at the same support threshold.

    Returns
    -------
    DuquenneGuiguesBasis
        One exact rule ``P → h(P) \\ P`` per frequent pseudo-closed
        itemset ``P``.
    """
    pseudo = frequent_pseudo_closed_itemsets(frequent, closed)
    return DuquenneGuiguesBasis(pseudo, n_objects=frequent.n_objects)
