"""Deriving all association rules from the two bases.

The central claim of the paper is that the Duquenne-Guigues basis and the
Luxenburger basis (or its transitive reduction) are *generating sets*:

* every exact association rule, with its support, can be deduced from the
  Duquenne-Guigues basis together with the frequent closed itemsets;
* every approximate association rule, with its support **and** its
  confidence, can be deduced from the Luxenburger basis (or its
  reduction).

:class:`BasisDerivation` implements that deduction.  It only uses
information carried by the bases themselves (rule sides, supports,
confidences) plus the number of objects; in particular it never goes back
to the transaction database, which is what makes the round-trip tests in
``tests/test_derivation.py`` meaningful: rules derived here must match,
rule for rule and statistic for statistic, the rules generated naively
from the frequent itemsets.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import DerivationError, InvalidParameterError
from .constants import EPSILON
from .dg_basis import DuquenneGuiguesBasis
from .families import ItemsetFamily
from .itemset import Item, Itemset
from .luxenburger import LuxenburgerBasis
from .rules import AssociationRule, RuleSet

__all__ = ["BasisDerivation"]


class BasisDerivation:
    """Reconstructs arbitrary association rules from the two bases.

    Parameters
    ----------
    dg_basis:
        The Duquenne-Guigues basis of exact rules.  Its implications define
        the closure operator on frequent itemsets (``implied_closure``),
        which maps any frequent itemset to its frequent-closed closure.
    luxenburger:
        A Luxenburger basis built on the same closed family (reduced or
        full).  Its rules carry the supports of the closed itemsets and
        the edge confidences used to reconstruct arbitrary confidences.
    n_objects:
        Number of objects of the context (to convert counts to relative
        supports).

    Notes
    -----
    The derivation needs the support of the *minimal* frequent closed
    itemset (the closure of the empty set), which by definition never
    appears as the head of a Luxenburger rule when it has no predecessor.
    Its support is always ``n_objects`` when the closure of the empty set
    is the empty set; otherwise it equals the support carried by the
    Duquenne-Guigues rule ``∅ → h(∅)``.  Both cases are handled without
    touching the database.
    """

    def __init__(
        self,
        dg_basis: DuquenneGuiguesBasis,
        luxenburger: LuxenburgerBasis,
        n_objects: int,
    ) -> None:
        if n_objects <= 0:
            raise InvalidParameterError("n_objects must be positive")
        self._dg = dg_basis
        self._lux = luxenburger
        self._n_objects = n_objects
        self._closed_supports = self._recover_closed_supports()

    # ------------------------------------------------------------------
    # Support recovery from the bases alone
    # ------------------------------------------------------------------
    def _recover_closed_supports(self) -> dict[Itemset, int]:
        """Recover the support of every frequent closed itemset from the bases."""
        supports: dict[Itemset, int] = {}

        # Every Luxenburger rule C1 → C2\C1 carries supp(C2) as its support
        # count, and supp(C1) = supp(C2) / confidence.
        for rule in self._lux.rules:
            head = rule.antecedent.union(rule.consequent)
            count = rule.support_count
            if count is None:
                count = round(rule.support * self._n_objects)
            supports[head] = int(count)
            antecedent_count = int(round(count / rule.confidence))
            supports.setdefault(rule.antecedent, antecedent_count)

        # Exact rules carry supp(h(P)) for their closures.
        for rule in self._dg.rules:
            closure = rule.antecedent.union(rule.consequent)
            count = rule.support_count
            if count is None:
                count = round(rule.support * self._n_objects)
            supports.setdefault(closure, int(count))

        # The closure of the empty set: if it is the empty itemset it never
        # appears above; its support is the whole database by definition.
        bottom = self.closure(Itemset.empty())
        supports.setdefault(bottom, self._n_objects)
        return supports

    # ------------------------------------------------------------------
    # Primitive queries
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        """Number of objects of the context."""
        return self._n_objects

    def closure(self, itemset: Itemset | Iterable[Item]) -> Itemset:
        """Closure of a frequent itemset, computed from the exact basis only."""
        return self._dg.implied_closure(Itemset.coerce(itemset))

    def support_count_of_closed(self, closed: Itemset) -> int:
        """Absolute support of a frequent closed itemset.

        The support is first looked up among the values carried by the basis
        rules themselves.  When the Luxenburger basis was built with a
        confidence filter, some closed itemsets may head no surviving rule;
        their support is then read from the frequent closed family attached
        to the basis — which is legitimate, since the paper's deduction
        framework always assumes the frequent closed itemsets (the minimal
        generating set for all supports) are available alongside the bases.
        """
        count = self._closed_supports.get(closed)
        if count is not None:
            return count
        family = self._lux.closed_family
        if closed in family:
            return family.support_count(closed)
        raise DerivationError(
            f"the support of closed itemset {closed} is not recoverable from "
            "the bases; the itemset is probably not frequent at the mining "
            "threshold"
        )

    def support_count(self, itemset: Itemset | Iterable[Item]) -> int:
        """Absolute support of an arbitrary frequent itemset (via its closure)."""
        return self.support_count_of_closed(self.closure(itemset))

    def support(self, itemset: Itemset | Iterable[Item]) -> float:
        """Relative support of an arbitrary frequent itemset."""
        return self.support_count(itemset) / self._n_objects

    def confidence(
        self,
        antecedent: Itemset | Iterable[Item],
        consequent: Itemset | Iterable[Item],
    ) -> float:
        """Confidence of ``antecedent → consequent`` reconstructed from the bases.

        The confidence equals ``supp(h(X ∪ Y)) / supp(h(X))``.  When the two
        closures differ, that ratio is recovered as the product of the edge
        confidences along a lattice path of the Luxenburger basis, which is
        exactly the deduction mechanism described with Theorem 2.
        """
        antecedent = Itemset.coerce(antecedent)
        consequent = Itemset.coerce(consequent)
        lower = self.closure(antecedent)
        upper = self.closure(antecedent.union(consequent))
        if lower == upper:
            return 1.0
        path_confidence = self._lux.path_confidence(lower, upper)
        if path_confidence is None:
            raise DerivationError(
                f"no Luxenburger path between {lower} and {upper}; "
                "the rule is not derivable at this support threshold"
            )
        return path_confidence

    # ------------------------------------------------------------------
    # Rule derivation
    # ------------------------------------------------------------------
    def derive_rule(
        self,
        antecedent: Itemset | Iterable[Item],
        consequent: Itemset | Iterable[Item],
    ) -> AssociationRule:
        """Reconstruct the rule ``antecedent → consequent`` with its statistics.

        Parameters
        ----------
        antecedent : Itemset or iterable of items
            The rule body (may be empty).
        consequent : Itemset or iterable of items
            The rule head.

        Returns
        -------
        AssociationRule
            The candidate rule carrying the support, confidence and
            absolute support count reconstructed from the bases alone.

        Raises
        ------
        DerivationError
            When the rule is not derivable — its itemsets are not
            frequent at the mining threshold, or no Luxenburger path
            connects the two closures.
        """
        antecedent = Itemset.coerce(antecedent)
        consequent = Itemset.coerce(consequent)
        count = self.support_count(antecedent.union(consequent))
        return AssociationRule(
            antecedent=antecedent,
            consequent=consequent,
            support=count / self._n_objects,
            confidence=self.confidence(antecedent, consequent),
            support_count=count,
        )

    def derive_exact_rules(self, frequent: ItemsetFamily) -> RuleSet:
        """Derive every exact rule with non-empty sides among frequent itemsets.

        The *frequent* family is used only to enumerate candidate itemsets
        (which itemsets exist); the decision "is this rule exact?" and the
        rule supports come exclusively from the bases.
        """
        rules = RuleSet()
        for itemset in frequent.itemsets():
            if len(itemset) < 2:
                continue
            for antecedent in itemset.nonempty_proper_subsets():
                closure = self.closure(antecedent)
                if itemset.issubset(closure):
                    count = self.support_count_of_closed(closure)
                    rules.add(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=itemset.difference(antecedent),
                            support=count / self._n_objects,
                            confidence=1.0,
                            support_count=count,
                        )
                    )
        return rules

    def derive_approximate_rules(
        self, frequent: ItemsetFamily, minconf: float
    ) -> RuleSet:
        """Derive every approximate rule with confidence in ``[minconf, 1)``.

        As for :meth:`derive_exact_rules`, the frequent family only supplies
        the candidate itemsets; supports and confidences are reconstructed
        from the bases (closure via the Duquenne-Guigues implications,
        confidence via Luxenburger path products).
        """
        if not 0.0 <= minconf <= 1.0:
            raise InvalidParameterError(f"minconf must lie in [0, 1], got {minconf}")
        rules = RuleSet()
        for itemset in frequent.itemsets():
            if len(itemset) < 2:
                continue
            upper = self.closure(itemset)
            upper_count = self.support_count_of_closed(upper)
            for antecedent in itemset.nonempty_proper_subsets():
                lower = self.closure(antecedent)
                if itemset.issubset(lower):
                    continue  # exact rule, not approximate
                confidence = self._lux.path_confidence(lower, upper)
                if confidence is None:
                    raise DerivationError(
                        f"no Luxenburger path between {lower} and {upper}"
                    )
                if confidence >= minconf - EPSILON and confidence < 1.0 - EPSILON:
                    rules.add(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=itemset.difference(antecedent),
                            support=upper_count / self._n_objects,
                            confidence=confidence,
                            support_count=upper_count,
                        )
                    )
        return rules

    def derive_all_rules(self, frequent: ItemsetFamily, minconf: float) -> RuleSet:
        """Derive every rule (exact and approximate) above *minconf*."""
        combined = self.derive_exact_rules(frequent)
        combined.update(self.derive_approximate_rules(frequent, minconf))
        return combined
