"""The iceberg lattice of frequent closed itemsets.

The frequent closed itemsets ordered by set inclusion form a
join-semilattice (the top part — the "iceberg" — of the full Galois/
concept lattice of the context).  Its Hasse diagram is exactly the set of
edges used by the transitive reduction of the Luxenburger basis, and its
paths drive the derivation of approximate-rule confidences, so this
module is shared by :mod:`repro.core.luxenburger` and
:mod:`repro.core.derivation`.

The lattice is materialised as a :class:`networkx.DiGraph` whose edges go
from a closed itemset to its immediate successors (supersets with nothing
in between); node attributes carry the support counts.
"""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx

from .families import ClosedItemsetFamily
from .itemset import Itemset

__all__ = ["IcebergLattice"]


class IcebergLattice:
    """Hasse diagram of a family of frequent closed itemsets.

    Parameters
    ----------
    closed:
        The frequent closed itemsets with their supports.

    Examples
    --------
    >>> from repro.core.families import ClosedItemsetFamily
    >>> family = ClosedItemsetFamily(
    ...     {Itemset("c"): 4, Itemset("ac"): 3, Itemset("be"): 4,
    ...      Itemset("bce"): 3, Itemset("abce"): 2},
    ...     n_objects=5, minsup_count=2)
    >>> lattice = IcebergLattice(family)
    >>> len(lattice.hasse_edges())
    5
    """

    def __init__(self, closed: ClosedItemsetFamily) -> None:
        self._closed = closed
        self._graph = nx.DiGraph()
        members = closed.itemsets()
        for member in members:
            self._graph.add_node(member, support_count=closed.support_count(member))
        # Inverted index ``item -> indices of members containing it``; the
        # proper supersets of a member are the intersection of its items'
        # posting lists, which avoids the quadratic all-pairs subset test
        # that dominates on families with tens of thousands of members.
        self._members: list[Itemset] = members
        index: dict[object, set[int]] = {}
        for position, member in enumerate(members):
            for item in member:
                index.setdefault(item, set()).add(position)
        self._item_index = index
        self._all_positions = set(range(len(members)))
        # Immediate-successor computation: for each pair smaller ⊂ larger,
        # the edge is kept iff no third member lies strictly in between.
        for smaller in members:
            successors = sorted(self._proper_supersets(smaller), key=len)
            immediate: list[Itemset] = []
            for candidate in successors:
                if not any(mid.is_proper_subset(candidate) for mid in immediate):
                    immediate.append(candidate)
            for successor in immediate:
                self._graph.add_edge(smaller, successor)

    def _proper_supersets(self, member: Itemset) -> list[Itemset]:
        """Members strictly containing *member*, via the inverted item index."""
        positions: set[int] | None = None
        for item in member:
            posting = self._item_index.get(item, set())
            positions = posting.copy() if positions is None else positions & posting
            if not positions:
                return []
        if positions is None:  # the empty itemset: every other member contains it
            positions = set(self._all_positions)
        return [
            self._members[position]
            for position in positions
            if len(self._members[position]) > len(member)
        ]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def closed_family(self) -> ClosedItemsetFamily:
        """The closed itemset family the lattice was built from."""
        return self._closed

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying Hasse diagram as a DiGraph."""
        return self._graph.copy()

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, itemset: object) -> bool:
        return isinstance(itemset, Itemset) and itemset in self._graph

    def nodes(self) -> list[Itemset]:
        """Return the closed itemsets (lattice nodes) in canonical order."""
        return sorted(self._graph.nodes)

    def support_count(self, itemset: Itemset) -> int:
        """Absolute support of a lattice node."""
        return self._graph.nodes[itemset]["support_count"]

    # ------------------------------------------------------------------
    # Order structure
    # ------------------------------------------------------------------
    def hasse_edges(self) -> list[tuple[Itemset, Itemset]]:
        """Return the Hasse edges as ``(smaller, larger)`` pairs, sorted."""
        return sorted(self._graph.edges)

    def comparable_pairs(self) -> Iterator[tuple[Itemset, Itemset]]:
        """Yield every pair ``(smaller, larger)`` with ``smaller ⊂ larger``.

        This is the edge set of the *full* (non-reduced) Luxenburger basis.
        """
        for smaller in self._members:
            for larger in sorted(self._proper_supersets(smaller)):
                yield (smaller, larger)

    def immediate_successors(self, itemset: Itemset) -> list[Itemset]:
        """Closed supersets of *itemset* with no closed set strictly in between."""
        return sorted(self._graph.successors(itemset))

    def immediate_predecessors(self, itemset: Itemset) -> list[Itemset]:
        """Closed subsets of *itemset* with no closed set strictly in between."""
        return sorted(self._graph.predecessors(itemset))

    def minimal_elements(self) -> list[Itemset]:
        """Nodes with no predecessor (usually the single closure of ∅)."""
        return sorted(n for n in self._graph.nodes if self._graph.in_degree(n) == 0)

    def maximal_elements(self) -> list[Itemset]:
        """Nodes with no successor (the maximal frequent closed itemsets)."""
        return sorted(n for n in self._graph.nodes if self._graph.out_degree(n) == 0)

    def path_between(
        self, smaller: Itemset, larger: Itemset
    ) -> list[Itemset] | None:
        """Return one Hasse path from *smaller* to *larger*, or ``None``.

        A path exists iff ``smaller ⊆ larger`` and both are lattice nodes;
        any path gives the same confidence product, so the first one found
        by a shortest-path search is as good as any other.
        """
        if smaller not in self._graph or larger not in self._graph:
            return None
        if smaller == larger:
            return [smaller]
        try:
            return nx.shortest_path(self._graph, smaller, larger)
        except nx.NetworkXNoPath:
            return None

    def is_transitive_reduction(self) -> bool:
        """Check that the stored edges really are the Hasse diagram.

        Used by tests: the graph must equal the transitive reduction of
        the full containment order.
        """
        full = nx.DiGraph()
        full.add_nodes_from(self._graph.nodes)
        full.add_edges_from(self.comparable_pairs())
        reduction = nx.transitive_reduction(full)
        return set(reduction.edges) == set(self._graph.edges)

    # ------------------------------------------------------------------
    # Shape statistics (used by reports and examples)
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Length (in edges) of the longest chain of the lattice."""
        if self._graph.number_of_nodes() == 0:
            return 0
        return int(nx.dag_longest_path_length(self._graph))

    def width_by_size(self) -> dict[int, int]:
        """Number of closed itemsets per cardinality (a coarse width profile)."""
        profile: dict[int, int] = {}
        for node in self._graph.nodes:
            profile[len(node)] = profile.get(len(node), 0) + 1
        return dict(sorted(profile.items()))

    def edge_count(self) -> int:
        """Number of Hasse edges (the size of the reduced Luxenburger skeleton)."""
        return self._graph.number_of_edges()
