"""The iceberg lattice of frequent closed itemsets.

The frequent closed itemsets ordered by set inclusion form a
join-semilattice (the top part — the "iceberg" — of the full Galois/
concept lattice of the context).  Its Hasse diagram is exactly the set of
edges used by the transitive reduction of the Luxenburger basis, and its
paths drive the derivation of approximate-rule confidences, so this
module is shared by :mod:`repro.core.luxenburger` and
:mod:`repro.core.derivation`.

Construction is vectorised behind a **strategy seam**: the closed family
is packed into uint64 item-masks and handed to one of the three order
cores of :mod:`repro.core.order` —

* ``dense`` — two dense bool passes (bulk AND/compare containment,
  float32-BLAS transitive reduction); fastest up to ~10k nodes at
  ``n**2`` bytes of steady-state memory;
* ``packed`` — the bit-packed :class:`~repro.core.bitmatrix.BitMatrix`
  order (``n**2 / 8`` bytes, blocked construction and gather/OR-reduce
  reduction); the only core that loads 50k+-node families;
* ``reference`` — the original per-pair pure-Python Hasse builder
  (:func:`hasse_edges_reference`), kept as the oracle the vectorised
  cores are checked against.

``strategy="auto"`` (the default) picks dense below
:data:`~repro.core.order.DENSE_NODE_LIMIT` nodes and packed above, and
can be forced process-wide with the ``REPRO_LATTICE_STRATEGY``
environment variable, per lattice with the constructor argument, or from
the CLI with ``repro bases --lattice-strategy packed``.

Downstream consumers never touch the underlying matrices: the basis
constructions iterate the exposed edge/confidence index arrays, and the
neighbourhood queries go through strategy-agnostic accessors
(:meth:`IcebergLattice.children_of`, :meth:`IcebergLattice.parents_of`,
:meth:`IcebergLattice.is_ancestor`, …).  A :mod:`networkx` view is still
available through :meth:`IcebergLattice.to_networkx` and is built lazily
for the callers that want one.
"""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx
import numpy as np

from ..errors import InvalidParameterError
from .constants import EPSILON
from .families import ClosedItemsetFamily
from .itemset import Itemset
from .order import OrderCore, build_order_core, pack_itemset_masks, resolve_strategy

__all__ = ["IcebergLattice", "hasse_edges_reference"]


def hasse_edges_reference(closed: ClosedItemsetFamily) -> list[tuple[Itemset, Itemset]]:
    """Hasse edges by the pre-vectorisation per-pair algorithm.

    This is the original pure-Python builder (inverted item index, then a
    per-pair immediate-successor scan), kept as the oracle the vectorised
    construction is checked against in the equivalence tests and as the
    baseline of the lattice microbenchmark.
    """
    members = closed.itemsets()
    index: dict[object, set[int]] = {}
    for position, member in enumerate(members):
        for item in member:
            index.setdefault(item, set()).add(position)
    all_positions = set(range(len(members)))

    def proper_supersets(member: Itemset) -> list[Itemset]:
        positions: set[int] | None = None
        for item in member:
            posting = index.get(item, set())
            positions = posting.copy() if positions is None else positions & posting
            if not positions:
                return []
        if positions is None:  # the empty itemset
            positions = set(all_positions)
        return [
            members[position]
            for position in positions
            if len(members[position]) > len(member)
        ]

    edges: list[tuple[Itemset, Itemset]] = []
    for smaller in members:
        successors = sorted(proper_supersets(smaller), key=len)
        immediate: list[Itemset] = []
        for candidate in successors:
            if not any(mid.is_proper_subset(candidate) for mid in immediate):
                immediate.append(candidate)
        edges.extend((smaller, successor) for successor in immediate)
    return sorted(edges)


class IcebergLattice:
    """Hasse diagram of a family of frequent closed itemsets.

    Parameters
    ----------
    closed:
        The frequent closed itemsets with their supports.
    strategy:
        Order-core strategy: ``"auto"`` (default; dense below the size
        threshold, packed above, overridable via the
        ``REPRO_LATTICE_STRATEGY`` environment variable), ``"dense"``,
        ``"packed"`` or ``"reference"``.
    order_core:
        A prebuilt :class:`~repro.core.order.OrderCore` over the family's
        canonical member order.  When given, the (expensive) containment
        and transitive-reduction passes are skipped entirely and
        *strategy* is ignored — this is how :mod:`repro.store` rehydrates
        a persisted lattice.  The core must have been built for exactly
        this family's members in canonical order (``closed.itemsets()``);
        a node-count mismatch raises.
    workers:
        Worker count for the sharded construction kernels of the packed
        core (``None`` = the ``REPRO_NUM_WORKERS`` environment variable,
        else serial; ``0`` = all cores).  The built lattice is
        byte-identical for any worker count; ignored when *order_core*
        is given or a non-packed strategy resolves.
    retain_containment:
        When ``False`` the packed core drops the ``n**2 / 8``-byte
        containment words after extracting the Hasse edges and answers
        containment queries by mask probing — the memory-lean mode of
        query-only consumers such as ``repro serve``.

    Examples
    --------
    >>> from repro.core.families import ClosedItemsetFamily
    >>> family = ClosedItemsetFamily(
    ...     {Itemset("c"): 4, Itemset("ac"): 3, Itemset("be"): 4,
    ...      Itemset("bce"): 3, Itemset("abce"): 2},
    ...     n_objects=5, minsup_count=2)
    >>> lattice = IcebergLattice(family)
    >>> len(lattice.hasse_edges())
    5
    """

    def __init__(
        self,
        closed: ClosedItemsetFamily,
        strategy: str = "auto",
        order_core: "OrderCore | None" = None,
        workers: int | None = None,
        retain_containment: bool = True,
    ) -> None:
        self._closed = closed
        members = closed.itemsets()
        self._members: list[Itemset] = members
        self._index: dict[Itemset, int] = {
            member: position for position, member in enumerate(members)
        }
        self._supports = np.array(
            [closed.support_count(member) for member in members], dtype=np.int64
        )
        masks, universe = pack_itemset_masks(members)
        # The packed member masks are retained (O(n x words) — negligible
        # next to the order core) because the array-native rule builders
        # assemble antecedent/consequent mask rows straight from them.
        self._masks = masks
        self._masks.setflags(write=False)
        self._universe: tuple = tuple(universe)
        if order_core is not None:
            if order_core.n != len(members):
                raise InvalidParameterError(
                    f"prebuilt order core covers {order_core.n} members, "
                    f"family has {len(members)}"
                )
            self._strategy = order_core.strategy
            self._core = order_core
        else:
            self._strategy = resolve_strategy(len(members), strategy)
            reference_edges = None
            if self._strategy == "reference":
                edges = hasse_edges_reference(closed)
                reference_edges = (
                    np.array(
                        [self._index[smaller] for smaller, _ in edges], dtype=np.int64
                    ),
                    np.array(
                        [self._index[larger] for _, larger in edges], dtype=np.int64
                    ),
                )
            self._core = build_order_core(
                masks,
                self._strategy,
                reference_edges,
                workers=workers,
                retain_containment=retain_containment,
            )
        self._hasse_rows, self._hasse_cols = self._core.hasse_indices()
        # The index/support arrays are handed out to the basis
        # constructions; freeze them so a consumer cannot corrupt the
        # lattice shared through a BasisContext.  (The core freezes its
        # own edge arrays.)
        self._supports.setflags(write=False)
        self._graph_cache: nx.DiGraph | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def closed_family(self) -> ClosedItemsetFamily:
        """The closed itemset family the lattice was built from."""
        return self._closed

    @property
    def strategy(self) -> str:
        """The resolved order-core strategy (``dense``/``packed``/``reference``)."""
        return self._strategy

    @property
    def order_core(self) -> OrderCore:
        """The underlying order core (what :mod:`repro.store` persists)."""
        return self._core

    @property
    def members(self) -> list[Itemset]:
        """The closed itemsets in canonical (size, lexicographic) order."""
        return list(self._members)

    def member_index(self, itemset: Itemset) -> int | None:
        """Position of *itemset* in :attr:`members`, or ``None`` if absent."""
        return self._index.get(itemset)

    def _graph(self) -> nx.DiGraph:
        """The Hasse diagram as a DiGraph, materialised on first use."""
        if self._graph_cache is None:
            graph = nx.DiGraph()
            for member, count in zip(self._members, self._supports):
                graph.add_node(member, support_count=int(count))
            graph.add_edges_from(
                (self._members[row], self._members[col])
                for row, col in zip(self._hasse_rows, self._hasse_cols)
            )
            self._graph_cache = graph
        return self._graph_cache

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying Hasse diagram as a DiGraph."""
        return self._graph().copy()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, itemset: object) -> bool:
        return isinstance(itemset, Itemset) and itemset in self._index

    def nodes(self) -> list[Itemset]:
        """Return the closed itemsets (lattice nodes) in canonical order."""
        return sorted(self._members)

    def support_count(self, itemset: Itemset) -> int:
        """Absolute support of a lattice node."""
        return int(self._supports[self._index[itemset]])

    # ------------------------------------------------------------------
    # Array views (consumed by the basis constructions)
    # ------------------------------------------------------------------
    def support_counts(self) -> np.ndarray:
        """Support counts aligned with :attr:`members` (read-only view)."""
        return self._supports

    @property
    def item_universe(self) -> tuple:
        """The item universe of the member masks, in canonical bit order."""
        return self._universe

    def member_masks(self) -> np.ndarray:
        """Packed uint64 item-mask rows aligned with :attr:`members`.

        Bit ``i`` (little-endian across the words) of row ``r`` is set iff
        ``members[r]`` contains ``item_universe[i]`` — the layout shared
        with :class:`~repro.core.bitmatrix.BitMatrix` and the engine
        bitsets.  Read-only view; the array-native basis constructions
        gather their rule masks from it.
        """
        return self._masks

    def hasse_edge_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Hasse edges as ``(smaller, larger)`` index arrays into members."""
        return self._hasse_rows, self._hasse_cols

    def containment_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Every comparable pair as index arrays (the full, non-reduced order)."""
        return self._core.containment_indices()

    def edge_confidences(self, full: bool = False) -> np.ndarray:
        """Confidence ``supp(larger)/supp(smaller)`` per edge (or per pair).

        Aligned with :meth:`hasse_edge_indices` (``full=False``) or
        :meth:`containment_indices` (``full=True``).
        """
        rows, cols = (
            self.containment_indices() if full else self.hasse_edge_indices()
        )
        smaller = self._supports[rows].astype(np.float64)
        larger = self._supports[cols].astype(np.float64)
        return np.divide(
            larger, smaller, out=np.zeros_like(larger), where=smaller != 0
        )

    def confidence_window_pairs(
        self, minconf: float, reduced: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Closed-set pairs whose confidence lies in ``[minconf, 1)``.

        The pair selection shared by the approximate-rule bases
        (Luxenburger and informative): Hasse edges when *reduced*, every
        comparable pair otherwise, with ``supp(larger)/supp(smaller)``
        computed in one safe vectorised divide and thresholded with the
        library-wide :data:`~repro.core.constants.EPSILON` semantics
        (confidence 1 between distinct closed sets would mean the
        smaller one is not closed; guarded for malformed input).

        Returns ``(rows, cols, confidences)`` index arrays into
        :attr:`members`, row-major (``rows`` non-decreasing) — the order
        the CSR expansion of the informative basis relies on.
        """
        if reduced:
            rows, cols = self.hasse_edge_indices()
        else:
            rows, cols = self.containment_indices()
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        smaller = self._supports[rows].astype(np.float64)
        larger = self._supports[cols].astype(np.float64)
        confidences = np.divide(
            larger, smaller, out=np.zeros_like(larger), where=smaller != 0
        )
        keep = (confidences >= minconf - EPSILON) & (confidences < 1.0 - EPSILON)
        return rows[keep], cols[keep], confidences[keep]

    def confidence_between(self, smaller: Itemset, larger: Itemset) -> float | None:
        """Confidence ``supp(larger)/supp(smaller)`` for comparable nodes.

        Equals the product of the edge confidences along any Hasse path
        from *smaller* to *larger* (the products telescope), so this is
        the array-backed replacement for a path walk.  Returns ``None``
        when either node is missing or the two are not comparable.
        """
        row = self._index.get(smaller)
        col = self._index.get(larger)
        if row is None or col is None:
            return None
        if row == col:
            return 1.0
        if not self._core.is_ancestor(row, col):
            return None
        denominator = int(self._supports[row])
        return int(self._supports[col]) / denominator if denominator else 0.0

    # ------------------------------------------------------------------
    # Order structure (strategy-agnostic accessors)
    # ------------------------------------------------------------------
    def is_ancestor(self, smaller: Itemset, larger: Itemset) -> bool:
        """``True`` iff both are nodes and ``smaller ⊂ larger`` (strictly).

        "Ancestor" follows the edge direction of the Hasse diagram
        (smaller → larger): the ancestors of a node are the closed sets
        strictly below it in the containment order.
        """
        row = self._index.get(smaller)
        col = self._index.get(larger)
        if row is None or col is None or row == col:
            return False
        return self._core.is_ancestor(row, col)

    def hasse_edges(self) -> list[tuple[Itemset, Itemset]]:
        """Return the Hasse edges as ``(smaller, larger)`` pairs, sorted."""
        return sorted(
            (self._members[row], self._members[col])
            for row, col in zip(self._hasse_rows, self._hasse_cols)
        )

    def comparable_pairs(self) -> Iterator[tuple[Itemset, Itemset]]:
        """Yield every pair ``(smaller, larger)`` with ``smaller ⊂ larger``.

        This is the edge set of the *full* (non-reduced) Luxenburger basis.
        """
        for row, col in zip(*self.containment_indices()):
            yield (self._members[row], self._members[col])

    def proper_supersets(self, itemset: Itemset) -> list[Itemset]:
        """Every member strictly containing *itemset* (full-order row), sorted."""
        row = self._index[itemset]
        return sorted(self._members[col] for col in self._core.order_row(row))

    def children_of(self, itemset: Itemset) -> list[Itemset]:
        """Closed supersets of *itemset* with no closed set strictly in between.

        One Hasse step along the edge direction (smaller → larger).
        """
        row = self._index[itemset]
        return sorted(self._members[col] for col in self._core.successors(row))

    def parents_of(self, itemset: Itemset) -> list[Itemset]:
        """Closed subsets of *itemset* with no closed set strictly in between.

        One Hasse step against the edge direction (larger → smaller).
        """
        col = self._index[itemset]
        return sorted(self._members[row] for row in self._core.predecessors(col))

    def immediate_successors(self, itemset: Itemset) -> list[Itemset]:
        """Alias of :meth:`children_of` (the pre-seam accessor name)."""
        return self.children_of(itemset)

    def immediate_predecessors(self, itemset: Itemset) -> list[Itemset]:
        """Alias of :meth:`parents_of` (the pre-seam accessor name)."""
        return self.parents_of(itemset)

    def minimal_elements(self) -> list[Itemset]:
        """Nodes with no predecessor (usually the single closure of ∅)."""
        if not self._members:
            return []
        in_degree = self._core.in_degrees()
        return sorted(
            self._members[position] for position in np.nonzero(in_degree == 0)[0]
        )

    def maximal_elements(self) -> list[Itemset]:
        """Nodes with no successor (the maximal frequent closed itemsets)."""
        if not self._members:
            return []
        out_degree = self._core.out_degrees()
        return sorted(
            self._members[position] for position in np.nonzero(out_degree == 0)[0]
        )

    def path_between(
        self, smaller: Itemset, larger: Itemset
    ) -> list[Itemset] | None:
        """Return one Hasse path from *smaller* to *larger*, or ``None``.

        A path exists iff ``smaller ⊆ larger`` and both are lattice nodes;
        any path gives the same confidence product, so the greedy walk
        (always step to the first immediate successor still below
        *larger*) is as good as any other.
        """
        start = self._index.get(smaller)
        goal = self._index.get(larger)
        if start is None or goal is None:
            return None
        if start == goal:
            return [smaller]
        if not self._core.is_ancestor(start, goal):
            return None
        path = [smaller]
        current = start
        while current != goal:
            # In a containment order every node strictly below `goal` has
            # an immediate successor that is still <= goal, so the walk
            # always terminates in at most `height` steps.
            for successor in self._core.successors(current):
                successor = int(successor)
                if successor == goal or self._core.is_ancestor(successor, goal):
                    current = successor
                    break
            else:  # pragma: no cover - impossible for a well-formed order
                return None
            path.append(self._members[current])
        return path

    def is_transitive_reduction(self) -> bool:
        """Check that the stored edges really are the Hasse diagram.

        Used by tests: the graph must equal the transitive reduction of
        the full containment order.
        """
        full = nx.DiGraph()
        full.add_nodes_from(self._members)
        full.add_edges_from(self.comparable_pairs())
        reduction = nx.transitive_reduction(full)
        return set(reduction.edges) == set(self._graph().edges)

    # ------------------------------------------------------------------
    # Shape statistics (used by reports and examples)
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Length (in edges) of the longest chain of the lattice."""
        if not self._members:
            return 0
        return int(nx.dag_longest_path_length(self._graph()))

    def width_by_size(self) -> dict[int, int]:
        """Number of closed itemsets per cardinality (a coarse width profile)."""
        profile: dict[int, int] = {}
        for member in self._members:
            profile[len(member)] = profile.get(len(member), 0) + 1
        return dict(sorted(profile.items()))

    def edge_count(self) -> int:
        """Number of Hasse edges (the size of the reduced Luxenburger skeleton)."""
        return int(len(self._hasse_rows))
