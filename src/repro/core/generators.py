"""Minimal generators (key itemsets) of frequent closed itemsets.

An itemset ``G`` is a *minimal generator* (also called a key itemset) when
no proper subset of ``G`` has the same closure — equivalently, no proper
subset has the same support.  Every frequent closed itemset ``C`` has at
least one minimal generator, namely a smallest itemset whose closure is
``C``; minimal generators are downward-closed (every subset of a minimal
generator is a minimal generator), which is what makes them minable
level-wise by Close and A-Close.

Minimal generators matter for two reasons in this reproduction:

* they are the level-wise handles through which Close / A-Close reach the
  closed itemsets;
* they are the antecedents of the *informative* (generic / min-max) rule
  basis implemented in :mod:`repro.core.informative`, the follow-on basis
  of the same research group, which we include as an extension.

This module defines :class:`GeneratorFamily`, the mapping from each
frequent closed itemset to its minimal generators, plus verification
helpers used in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from ..data.context import TransactionDatabase
from ..errors import InvalidParameterError
from .families import ClosedItemsetFamily
from .itemset import Item, Itemset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bitmatrix import BitMatrix

__all__ = ["GeneratorFamily", "is_minimal_generator", "minimal_generators_brute_force"]


def is_minimal_generator(database: TransactionDatabase, itemset: Itemset) -> bool:
    """Check the defining property of a minimal generator against *database*.

    ``G`` is a minimal generator iff every immediate subset has a strictly
    larger support (dropping any item makes the itemset strictly more
    frequent).  The empty itemset is a minimal generator by convention.
    """
    itemset = Itemset.coerce(itemset)
    if not itemset:
        return True
    count = database.support_count(itemset)
    for subset in itemset.immediate_subsets():
        if database.support_count(subset) == count:
            return False
    return True


def minimal_generators_brute_force(
    database: TransactionDatabase, closed: Itemset
) -> list[Itemset]:
    """Enumerate the minimal generators of one closed itemset by brute force.

    Intended for tests and tiny examples only: it inspects every subset of
    *closed*, keeps those whose closure is *closed*, and retains the
    minimal ones with respect to set inclusion.
    """
    closed = Itemset.coerce(closed)
    with_same_closure = [
        subset
        for size in range(len(closed) + 1)
        for subset in closed.subsets_of_size(size)
        if database.closure(subset) == closed
    ]
    minimal: list[Itemset] = []
    for candidate in sorted(with_same_closure, key=len):
        if not any(existing.issubset(candidate) for existing in minimal):
            minimal.append(candidate)
    return sorted(minimal)


class GeneratorFamily:
    """Mapping from frequent closed itemsets to their minimal generators.

    Instances are usually built from the ``generators_by_closure`` mapping
    produced by :class:`~repro.algorithms.close.Close` or
    :class:`~repro.algorithms.aclose.AClose`.

    Parameters
    ----------
    closed_family:
        The family of frequent closed itemsets the generators refer to.
    generators_by_closure:
        Mapping ``closed itemset -> iterable of generator itemsets``.
        Every key must belong to *closed_family* and every generator must
        be a subset of its key.
    """

    def __init__(
        self,
        closed_family: ClosedItemsetFamily,
        generators_by_closure: Mapping[Itemset, Iterable[Itemset]],
    ) -> None:
        self._closed_family = closed_family
        self._mapping: dict[Itemset, tuple[Itemset, ...]] = {}
        for closed, generators in generators_by_closure.items():
            closed = Itemset.coerce(closed)
            if closed not in closed_family:
                raise InvalidParameterError(
                    f"{closed} is not a member of the closed itemset family"
                )
            ordered = tuple(sorted(Itemset.coerce(g) for g in generators))
            for generator in ordered:
                if not generator.issubset(closed):
                    raise InvalidParameterError(
                        f"generator {generator} is not a subset of its closure {closed}"
                    )
            self._mapping[closed] = ordered

    @property
    def closed_family(self) -> ClosedItemsetFamily:
        """The closed itemset family the generators are attached to."""
        return self._closed_family

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, closed: object) -> bool:
        if isinstance(closed, Itemset):
            return closed in self._mapping
        return False

    def closed_itemsets(self) -> list[Itemset]:
        """Return the closed itemsets that have at least one generator recorded."""
        return sorted(self._mapping)

    def generators_of(self, closed: Itemset | Iterable) -> tuple[Itemset, ...]:
        """Return the minimal generators recorded for one closed itemset."""
        return self._mapping.get(Itemset.coerce(closed), ())

    def all_generators(self) -> list[Itemset]:
        """Return every generator of the family, sorted canonically."""
        generators: set[Itemset] = set()
        for group in self._mapping.values():
            generators.update(group)
        return sorted(generators)

    def packed_masks(
        self, universe: Sequence[Item] | None = None
    ) -> tuple["BitMatrix", list[Itemset], tuple[Item, ...]]:
        """Pack every recorded ``(closure, generator)`` pair into mask rows.

        Returns ``(generator_matrix, closures, universe)``: row ``i`` of
        the :class:`~repro.core.bitmatrix.BitMatrix` is the packed item
        mask of the ``i``-th generator in the canonical enumeration order
        (closures sorted canonically, each closure's generators in their
        stored sorted order), and ``closures[i]`` is the closure that
        generator belongs to.  Bit ``j`` of a row refers to
        ``universe[j]``; when *universe* is omitted it is derived from
        the closures (every generator is a subset of its closure, so the
        closure items always suffice).  Passing the iceberg lattice's
        :attr:`~repro.core.lattice.IcebergLattice.item_universe` makes
        the rows directly composable with the lattice's member masks —
        that is how the array-native informative/generic bases assemble
        their antecedent columns in one gather.
        """
        from .rulearrays import pack_itemsets_into, sorted_universe

        pairs: list[tuple[Itemset, Itemset]] = [
            (closed, generator)
            for closed in self.closed_itemsets()
            for generator in self.generators_of(closed)
        ]
        if universe is None:
            universe = sorted_universe(
                item for closed, _ in pairs for item in closed
            )
        universe = tuple(universe)
        matrix = pack_itemsets_into([generator for _, generator in pairs], universe)
        return matrix, [closed for closed, _ in pairs], universe

    def proper_generators_of(self, closed: Itemset | Iterable) -> tuple[Itemset, ...]:
        """Return the generators of *closed* that differ from *closed* itself.

        These are the antecedents of the exact informative-basis rules: a
        closed itemset that is its own unique minimal generator produces no
        exact rule.
        """
        closed = Itemset.coerce(closed)
        return tuple(g for g in self.generators_of(closed) if g != closed)

    def verify_against(self, database: TransactionDatabase) -> list[str]:
        """Return a list of human-readable violations (empty when consistent).

        Checks, for every recorded pair, that the generator's closure in
        *database* is its key and that the generator satisfies the minimal
        generator property.  Used by integration tests and by the ablation
        benchmark that cross-checks the miners.
        """
        problems: list[str] = []
        for closed, generators in self._mapping.items():
            for generator in generators:
                closure = database.closure(generator)
                if closure != closed:
                    problems.append(
                        f"closure of {generator} is {closure}, recorded under {closed}"
                    )
                if len(generator) > 0 and not is_minimal_generator(database, generator):
                    problems.append(f"{generator} is not a minimal generator")
        return problems
