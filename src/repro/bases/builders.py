"""The nine registered rule bases.

Each class below adapts one existing construction to the
:class:`~repro.bases.base.RuleBasis` protocol; importing this module
populates the registry.  The heavy lifting stays in :mod:`repro.core`
and :mod:`repro.algorithms` — these adapters only wire the shared
:class:`~repro.bases.base.BasisContext` (and in particular its single
iceberg lattice) into the constructors.
"""

from __future__ import annotations

from ..algorithms.rule_generation import (
    generate_all_rules,
    generate_approximate_rules,
    generate_exact_rules,
)
from ..core.dg_basis import build_duquenne_guigues_basis
from ..core.informative import GenericBasis, InformativeBasis
from ..core.luxenburger import LuxenburgerBasis
from .base import BasisContext, BuiltBasis
from .registry import register_basis

__all__ = [
    "AllRulesBasis",
    "ExactRulesBasis",
    "ApproximateRulesBasis",
    "DuquenneGuiguesRuleBasis",
    "LuxenburgerFullBasis",
    "LuxenburgerReducedBasis",
    "GenericRuleBasis",
    "InformativeFullBasis",
    "InformativeReducedBasis",
]


@register_basis
class AllRulesBasis:
    """Every valid rule — the baseline the bases are measured against."""

    name = "all"
    kind = "all"
    description = "all valid rules above minconf (the naive baseline)"

    def build(self, context: BasisContext) -> BuiltBasis:
        frequent = context.require_frequent(self.name)
        rules = generate_all_rules(frequent, minconf=context.minconf)
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=rules,
            metadata={"frequent_itemsets": len(frequent)},
        )


@register_basis
class ExactRulesBasis:
    """Every exact (confidence-1) rule, generated naively."""

    name = "exact"
    kind = "exact"
    description = "all exact (confidence-1) rules, generated naively"

    def build(self, context: BasisContext) -> BuiltBasis:
        frequent = context.require_frequent(self.name)
        rules = generate_exact_rules(frequent)
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=rules,
            metadata={"frequent_itemsets": len(frequent)},
        )


@register_basis
class ApproximateRulesBasis:
    """Every approximate rule in ``[minconf, 1)``, generated naively."""

    name = "approximate"
    kind = "approximate"
    description = "all approximate rules in [minconf, 1), generated naively"

    def build(self, context: BasisContext) -> BuiltBasis:
        frequent = context.require_frequent(self.name)
        rules = generate_approximate_rules(frequent, minconf=context.minconf)
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=rules,
            metadata={"frequent_itemsets": len(frequent)},
        )


@register_basis
class DuquenneGuiguesRuleBasis:
    """The minimum-size basis for exact rules (Theorem 1)."""

    name = "dg"
    kind = "exact"
    description = "Duquenne-Guigues basis (pseudo-closed antecedents, Theorem 1)"

    def build(self, context: BasisContext) -> BuiltBasis:
        frequent = context.require_frequent(self.name)
        basis = build_duquenne_guigues_basis(frequent, context.closed)
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=basis.rules,
            source=basis,
            metadata=basis.metadata,
        )


@register_basis
class LuxenburgerFullBasis:
    """Every comparable closed pair (the full Luxenburger basis)."""

    name = "luxenburger"
    kind = "approximate"
    description = "full Luxenburger basis (every comparable closed pair)"

    def build(self, context: BasisContext) -> BuiltBasis:
        basis = LuxenburgerBasis(
            context.closed,
            minconf=context.minconf,
            transitive_reduction=False,
            lattice=context.lattice,
            block_rows=context.block_rows,
            workers=context.workers,
        )
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=basis.rules,
            source=basis,
            metadata=basis.metadata,
        )


@register_basis
class LuxenburgerReducedBasis:
    """Hasse edges only — the transitively reduced basis of Theorem 2."""

    name = "luxenburger-reduced"
    kind = "approximate"
    description = "reduced Luxenburger basis (lattice Hasse edges, Theorem 2)"

    def build(self, context: BasisContext) -> BuiltBasis:
        basis = LuxenburgerBasis(
            context.closed,
            minconf=context.minconf,
            transitive_reduction=True,
            lattice=context.lattice,
            block_rows=context.block_rows,
            workers=context.workers,
        )
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=basis.rules,
            source=basis,
            metadata=basis.metadata,
        )


@register_basis
class GenericRuleBasis:
    """Exact rules with minimal-generator antecedents (CL 2000 extension)."""

    name = "generic"
    kind = "exact"
    description = "generic basis (minimal-generator antecedents, exact rules)"

    def build(self, context: BasisContext) -> BuiltBasis:
        basis = GenericBasis(context.require_generators(self.name))
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=basis.rules,
            source=basis,
            metadata=basis.metadata,
        )


@register_basis
class InformativeFullBasis:
    """Approximate rules from generators to every larger closed set."""

    name = "informative"
    kind = "approximate"
    description = "informative basis (generators to every larger closed set)"

    def build(self, context: BasisContext) -> BuiltBasis:
        basis = InformativeBasis(
            context.require_generators(self.name),
            minconf=context.minconf,
            reduced=False,
            lattice=context.lattice,
            block_rows=context.block_rows,
            workers=context.workers,
        )
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=basis.rules,
            source=basis,
            metadata=basis.metadata,
        )


@register_basis
class InformativeReducedBasis:
    """Approximate rules from generators along lattice edges only."""

    name = "informative-reduced"
    kind = "approximate"
    description = "reduced informative basis (generators along lattice edges)"

    def build(self, context: BasisContext) -> BuiltBasis:
        basis = InformativeBasis(
            context.require_generators(self.name),
            minconf=context.minconf,
            reduced=True,
            lattice=context.lattice,
            block_rows=context.block_rows,
            workers=context.workers,
        )
        return BuiltBasis(
            name=self.name,
            kind=self.kind,
            rules=basis.rules,
            source=basis,
            metadata=basis.metadata,
        )
