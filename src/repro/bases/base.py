"""The rule-basis contract: build inputs, build outputs, the protocol.

Every rule artefact of the paper and its follow-ons — the naive "all
valid rules" baseline, the Duquenne-Guigues basis, the two Luxenburger
variants, the generic/informative bases — is, seen from the experiments,
the same thing: a named construction that turns mined itemset families
into a :class:`~repro.core.rules.RuleSet` plus some size metadata for the
reduction reports.  This module defines that shape:

* :class:`BasisContext` — the shared inputs (frequent family, closed
  family, minimal generators, ``minconf``) with a lazily built, *shared*
  iceberg lattice, so building several lattice-backed bases from one
  context packs and reduces the closed family exactly once;
* :class:`BuiltBasis` — the output record: the rules, the basis kind
  (exact / approximate / all) and the construction's metadata;
* :class:`RuleBasis` — the protocol every registered basis implements.

Concrete bases live in :mod:`repro.bases.builders` and are looked up by
name through :mod:`repro.bases.registry`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..core.generators import GeneratorFamily
from ..core.lattice import IcebergLattice
from ..core.rules import RuleSet
from ..errors import InvalidParameterError

__all__ = ["BasisContext", "BuiltBasis", "RuleBasis"]


@dataclass
class BasisContext:
    """Everything a rule-basis construction may need, computed once.

    Parameters
    ----------
    closed:
        The frequent closed itemsets (Close / A-Close / CHARM output).
        Always required — every basis is defined against the closed
        family's context.
    minconf:
        Minimum confidence threshold for the approximate constructions.
    frequent:
        All frequent itemsets (Apriori output); required by the naive
        rule sets and the Duquenne-Guigues construction.
    generators:
        Minimal generators grouped by closure; required by the generic /
        informative bases.
    generators_factory:
        Optional zero-argument callable producing the generator family on
        first use, so callers that *may* build a generator-backed basis
        do not pay for (or validate) the generators unless one is
        actually selected.
    lattice_strategy:
        Order-core strategy for the shared lattice (``"auto"``,
        ``"dense"``, ``"packed"`` or ``"reference"``); see
        :class:`~repro.core.lattice.IcebergLattice`.
    block_rows:
        Row-block size of the streamed column assembly used by the
        expanding bases (Luxenburger / informative).  ``None`` lets each
        builder pick the auto size from the shared working-set budget;
        an explicit positive integer forces that block size.  Streamed
        and one-shot builds are byte-identical, so this is purely a
        peak-memory knob.
    workers:
        Worker count for the sharded kernels (shared lattice
        construction and the streamed rule emitters); ``None`` defers to
        the ``REPRO_NUM_WORKERS`` environment variable, else serial, and
        ``0`` means all cores.  Every basis built from the context is
        byte-identical for any worker count — purely a wall-clock knob.
    """

    closed: ClosedItemsetFamily
    minconf: float
    frequent: ItemsetFamily | None = None
    generators: GeneratorFamily | None = None
    generators_factory: Callable[[], GeneratorFamily] | None = field(
        default=None, repr=False, compare=False
    )
    lattice_strategy: str = "auto"
    block_rows: int | None = None
    workers: int | None = None
    _lattice: IcebergLattice | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.minconf <= 1.0:
            raise InvalidParameterError(
                f"minconf must lie in [0, 1], got {self.minconf}"
            )

    @property
    def n_objects(self) -> int:
        """Number of objects of the originating database."""
        return self.closed.n_objects

    @property
    def lattice(self) -> IcebergLattice:
        """The iceberg lattice of the closed family, built once and shared."""
        if self._lattice is None:
            self._lattice = IcebergLattice(
                self.closed, strategy=self.lattice_strategy, workers=self.workers
            )
        return self._lattice

    def require_frequent(self, basis_name: str) -> ItemsetFamily:
        """The frequent family, or a clear error naming the basis that needs it."""
        if self.frequent is None:
            raise InvalidParameterError(
                f"basis {basis_name!r} needs the frequent itemset family; "
                "pass frequent= when building the BasisContext"
            )
        return self.frequent

    def require_generators(self, basis_name: str) -> GeneratorFamily:
        """The generator family, or a clear error naming the basis that needs it."""
        if self.generators is None and self.generators_factory is not None:
            self.generators = self.generators_factory()
        if self.generators is None:
            raise InvalidParameterError(
                f"basis {basis_name!r} needs the minimal generators; "
                "pass generators= (or generators_factory=) when building "
                "the BasisContext"
            )
        return self.generators


@dataclass(frozen=True)
class BuiltBasis:
    """One built rule basis: the rules plus report metadata.

    Attributes
    ----------
    name:
        Registry name the basis was built under.
    kind:
        ``"exact"`` (confidence-1 rules only), ``"approximate"``
        (confidence < 1 only) or ``"all"`` (both).
    rules:
        The basis rules.
    source:
        The underlying construction object (e.g. the
        :class:`~repro.core.dg_basis.DuquenneGuiguesBasis` instance), kept
        for callers that need more than the rules; ``None`` for the plain
        generated rule sets.
    metadata:
        Construction metadata (lattice shape, pseudo-closed counts, …)
        surfaced by the reduction reports.
    """

    name: str
    kind: str
    rules: RuleSet
    source: object = None
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of rules in the basis."""
        return len(self.rules)

    @property
    def rule_arrays(self):
        """The basis in columnar form (:class:`~repro.core.rulearrays.RuleArrays`).

        The array-native constructions build their rules as columns in
        the first place, so for those this is a zero-copy accessor; for
        object-built rule sets the columns are packed (and cached) on
        first use.
        """
        return self.rules.to_arrays()

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"BuiltBasis({self.name!r}, {self.kind}, {len(self.rules)} rules)"


@runtime_checkable
class RuleBasis(Protocol):
    """The contract every registered rule basis implements."""

    #: Registry key the basis is selected by (e.g. ``"dg"``).
    name: str
    #: ``"exact"``, ``"approximate"`` or ``"all"``.
    kind: str
    #: One-line human description shown by ``repro bases --list-bases``.
    description: str

    def build(self, context: BasisContext) -> BuiltBasis:
        """Build the basis from the shared context."""
        ...
