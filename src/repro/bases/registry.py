"""String-keyed registry of the rule bases.

The harness, the CLI, the experiment configuration and the benchmarks all
select rule bases by name through this registry instead of hard-coding
one attribute per basis.  Names are stable, lower-case identifiers::

    all, exact, approximate, dg, luxenburger, luxenburger-reduced,
    generic, informative, informative-reduced

``build_bases(context, names)`` builds any subset in one call, sharing
the context's lazily constructed iceberg lattice between the bases that
need one.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..errors import InvalidParameterError
from .base import BasisContext, BuiltBasis, RuleBasis

__all__ = [
    "register_basis",
    "get_basis",
    "available_bases",
    "resolve_basis_names",
    "build_bases",
    "registered_names",
    "basis_items",
    "DEFAULT_BASES",
]

#: The selection the classic harness / CLI output is built from (the four
#: artefacts of the original reduction tables).
DEFAULT_BASES: tuple[str, ...] = ("all", "dg", "luxenburger", "luxenburger-reduced")

_REGISTRY: dict[str, RuleBasis] = {}


def register_basis(basis: RuleBasis) -> RuleBasis:
    """Register *basis* under its ``name`` (usable as a class decorator).

    Parameters
    ----------
    basis : RuleBasis or type[RuleBasis]
        The basis to register; a class is instantiated with no arguments.

    Returns
    -------
    RuleBasis
        The *basis* argument unchanged, so the decorator form works.

    Raises
    ------
    InvalidParameterError
        When a basis with the same name is already registered.
    """
    instance = basis() if isinstance(basis, type) else basis
    name = instance.name
    if name in _REGISTRY:
        raise InvalidParameterError(f"rule basis {name!r} is already registered")
    _REGISTRY[name] = instance
    return basis


def get_basis(name: str) -> RuleBasis:
    """Return the registered basis called *name*.

    Parameters
    ----------
    name : str
        A registered basis name (see :func:`registered_names`).

    Returns
    -------
    RuleBasis
        The registered instance.

    Raises
    ------
    InvalidParameterError
        For unknown names, listing every known basis.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown rule basis {name!r}; expected one of: {known}"
        ) from None


def available_bases() -> dict[str, str]:
    """Mapping ``name -> one-line description`` of every registered basis."""
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def resolve_basis_names(
    selection: str | Sequence[str] | None,
) -> tuple[str, ...]:
    """Normalise a basis selection into a validated tuple of names.

    Parameters
    ----------
    selection : str or sequence of str, optional
        ``None`` (the default selection), a comma-separated string (the
        CLI form, e.g. ``"dg,luxenburger-reduced"``) or a sequence of
        names.

    Returns
    -------
    tuple[str, ...]
        The validated names; order preserved, duplicates dropped.

    Raises
    ------
    InvalidParameterError
        On unknown names or an empty selection.
    """
    if selection is None:
        names: Iterable[str] = DEFAULT_BASES
    elif isinstance(selection, str):
        names = [part.strip() for part in selection.split(",") if part.strip()]
    else:
        names = selection
    resolved: list[str] = []
    for name in names:
        get_basis(name)  # validates
        if name not in resolved:
            resolved.append(name)
    if not resolved:
        raise InvalidParameterError("empty rule-basis selection")
    return tuple(resolved)


def build_bases(
    context: BasisContext,
    names: str | Sequence[str] | None = None,
) -> dict[str, BuiltBasis]:
    """Build the selected bases from one shared context.

    Parameters
    ----------
    context : BasisContext
        The shared construction inputs (closed family, thresholds,
        optional frequent family / generators, the lazily built lattice).
    names : str or sequence of str, optional
        Basis selection, as accepted by :func:`resolve_basis_names`.

    Returns
    -------
    dict[str, BuiltBasis]
        ``name -> BuiltBasis`` in selection order.  Bases that need a
        lattice share the context's single lazily built instance.
    """
    return {
        name: get_basis(name).build(context)
        for name in resolve_basis_names(names)
    }


def registered_names() -> tuple[str, ...]:
    """Every registered basis name, sorted."""
    return tuple(sorted(_REGISTRY))


def basis_items() -> Mapping[str, RuleBasis]:
    """Read-only view of the registry (for introspection and tests)."""
    return dict(_REGISTRY)
