"""Unified rule-basis subsystem.

One protocol (:class:`~repro.bases.base.RuleBasis`), one shared input
bundle (:class:`~repro.bases.base.BasisContext`) and a string-keyed
registry covering every rule artefact of the paper and its follow-ons:

========================  ===========  ==============================================
name                      kind         construction
========================  ===========  ==============================================
``all``                   all          every valid rule above minconf (baseline)
``exact``                 exact        every confidence-1 rule, naive generation
``approximate``           approximate  every rule in ``[minconf, 1)``, naive
``dg``                    exact        Duquenne-Guigues basis (Theorem 1)
``luxenburger``           approximate  full Luxenburger basis (every closed pair)
``luxenburger-reduced``   approximate  reduced Luxenburger basis (Theorem 2)
``generic``               exact        generic basis (minimal generators, CL 2000)
``informative``           approximate  informative basis (generators, full)
``informative-reduced``   approximate  reduced informative basis (lattice edges)
========================  ===========  ==============================================

Quickstart::

    from repro.bases import BasisContext, build_bases

    context = BasisContext(closed=closed, minconf=0.7, frequent=frequent)
    built = build_bases(context, "dg,luxenburger-reduced")
    for name, basis in built.items():
        print(name, len(basis.rules), basis.metadata)

Bases that need the iceberg lattice share the context's single instance,
so building several lattice-backed bases packs and reduces the closed
family exactly once (the vectorised construction of
:mod:`repro.core.order`).
"""

from __future__ import annotations

from .base import BasisContext, BuiltBasis, RuleBasis
from .registry import (
    DEFAULT_BASES,
    available_bases,
    basis_items,
    build_bases,
    get_basis,
    register_basis,
    registered_names,
    resolve_basis_names,
)

# Importing the builders registers the nine standard bases.
from . import builders as _builders  # noqa: F401,E402

__all__ = [
    "BasisContext",
    "BuiltBasis",
    "RuleBasis",
    "DEFAULT_BASES",
    "available_bases",
    "basis_items",
    "build_bases",
    "get_basis",
    "register_basis",
    "registered_names",
    "resolve_basis_names",
]
