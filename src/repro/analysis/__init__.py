"""Analysis helpers: interestingness metrics and dataset statistics."""

from .metrics import (
    RuleMetrics,
    confidence,
    conviction,
    cosine,
    jaccard,
    leverage,
    lift,
    rule_metrics,
    summarize_rules,
)
from .statistics import DatasetStatistics, dataset_statistics, itemset_count_profile

__all__ = [
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "jaccard",
    "cosine",
    "RuleMetrics",
    "rule_metrics",
    "summarize_rules",
    "DatasetStatistics",
    "dataset_statistics",
    "itemset_count_profile",
]
