"""Dataset characteristic statistics (Table T1 of the reproduction).

The first table of the paper-family evaluations lists, for every dataset,
the number of objects, the number of items, the average object size and a
density indicator.  :func:`dataset_statistics` computes those figures for
any :class:`~repro.data.context.TransactionDatabase`, and
:func:`itemset_count_profile` adds the frequent/closed itemset counts used
by Table T2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..data.context import TransactionDatabase

__all__ = ["DatasetStatistics", "dataset_statistics", "itemset_count_profile"]


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of the dataset-characteristics table."""

    name: str
    n_objects: int
    n_items: int
    avg_object_size: float
    max_object_size: int
    density: float
    #: Support (relative) of the most frequent single item — an indicator of
    #: how correlated / dense the dataset is at the top of the lattice.
    top_item_support: float

    def as_dict(self) -> dict[str, object]:
        """Return the row as a plain dictionary (for the report renderers)."""
        return {
            "dataset": self.name,
            "objects": self.n_objects,
            "items": self.n_items,
            "avg_size": round(self.avg_object_size, 2),
            "max_size": self.max_object_size,
            "density": round(self.density, 4),
            "top_item_support": round(self.top_item_support, 4),
        }


def dataset_statistics(database: TransactionDatabase) -> DatasetStatistics:
    """Compute the characteristics row of one dataset."""
    counts = database.item_support_counts()
    top = max(counts.values(), default=0)
    return DatasetStatistics(
        name=database.name,
        n_objects=database.n_objects,
        n_items=database.n_items,
        avg_object_size=database.avg_transaction_size,
        max_object_size=database.max_transaction_size,
        density=database.density,
        top_item_support=top / database.n_objects if database.n_objects else 0.0,
    )


def itemset_count_profile(
    frequent: ItemsetFamily, closed: ClosedItemsetFamily
) -> dict[str, object]:
    """Summarise frequent vs. frequent-closed itemset counts (Table T2 row).

    Besides the raw counts the profile reports the ratio (how many frequent
    itemsets exist per closed itemset) and the per-size breakdown, which is
    what makes the dense/sparse contrast of the paper visible.
    """
    frequent_by_size = {size: len(group) for size, group in frequent.by_size().items()}
    closed_by_size = {size: len(group) for size, group in closed.by_size().items()}
    ratio = (len(frequent) / len(closed)) if len(closed) else 0.0
    return {
        "minsup": frequent.minsup,
        "frequent_itemsets": len(frequent),
        "closed_itemsets": len(closed),
        "ratio": round(ratio, 3),
        "max_frequent_size": frequent.max_size(),
        "max_closed_size": closed.max_size(),
        "frequent_by_size": frequent_by_size,
        "closed_by_size": closed_by_size,
        "median_closed_support": float(
            np.median([closed.support_count(i) for i in closed])
        )
        if len(closed)
        else 0.0,
    }
