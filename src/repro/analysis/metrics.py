"""Interestingness measures for association rules.

The paper only uses support and confidence, but any practical library (and
the examples shipped with this one) also reports the standard derived
measures.  All functions take the three elementary probabilities —
``P(X ∪ Y)``, ``P(X)``, ``P(Y)`` — either directly or through a rule plus
a support oracle, so they work identically whether supports come from the
database, from an :class:`~repro.core.families.ItemsetFamily`, or from the
bases via :class:`~repro.core.derivation.BasisDerivation`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable

from ..core.itemset import Itemset
from ..core.rulearrays import RuleArrays
from ..core.rules import AssociationRule, RuleSet
from ..errors import InvalidParameterError

__all__ = [
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "jaccard",
    "cosine",
    "rule_metrics",
    "RuleMetrics",
    "summarize_rules",
]

SupportOracle = Callable[[Itemset], float]


def _check_probability(value: float, label: str) -> float:
    if not -1e-12 <= value <= 1.0 + 1e-12:
        raise InvalidParameterError(f"{label} must be a probability, got {value}")
    return min(max(value, 0.0), 1.0)


def confidence(support_xy: float, support_x: float) -> float:
    """``P(X ∪ Y) / P(X)`` — the fraction of X-objects that also contain Y."""
    support_xy = _check_probability(support_xy, "support(X∪Y)")
    support_x = _check_probability(support_x, "support(X)")
    if support_x == 0.0:
        return 0.0
    return support_xy / support_x


def lift(support_xy: float, support_x: float, support_y: float) -> float:
    """``confidence / P(Y)`` — how much X raises the odds of Y (1 = independence)."""
    support_y = _check_probability(support_y, "support(Y)")
    if support_y == 0.0:
        return 0.0
    return confidence(support_xy, support_x) / support_y


def leverage(support_xy: float, support_x: float, support_y: float) -> float:
    """``P(X ∪ Y) − P(X)·P(Y)`` — additive deviation from independence."""
    return (
        _check_probability(support_xy, "support(X∪Y)")
        - _check_probability(support_x, "support(X)")
        * _check_probability(support_y, "support(Y)")
    )


def conviction(support_xy: float, support_x: float, support_y: float) -> float:
    """``P(X)·P(¬Y) / P(X ∪ ¬Y)`` — ``inf`` for exact rules, 1 at independence."""
    conf = confidence(support_xy, support_x)
    support_y = _check_probability(support_y, "support(Y)")
    if conf >= 1.0:
        return math.inf
    return (1.0 - support_y) / (1.0 - conf)


def jaccard(support_xy: float, support_x: float, support_y: float) -> float:
    """``P(X ∪ Y) / (P(X) + P(Y) − P(X ∪ Y))`` — overlap of the two covers."""
    denominator = (
        _check_probability(support_x, "support(X)")
        + _check_probability(support_y, "support(Y)")
        - _check_probability(support_xy, "support(X∪Y)")
    )
    if denominator <= 0.0:
        return 0.0
    return support_xy / denominator


def cosine(support_xy: float, support_x: float, support_y: float) -> float:
    """``P(X ∪ Y) / sqrt(P(X)·P(Y))`` — the geometric-mean normalised support."""
    product = _check_probability(support_x, "support(X)") * _check_probability(
        support_y, "support(Y)"
    )
    if product <= 0.0:
        return 0.0
    return _check_probability(support_xy, "support(X∪Y)") / math.sqrt(product)


class RuleMetrics:
    """All interestingness measures of one rule, computed from a support oracle."""

    __slots__ = (
        "rule",
        "support",
        "confidence",
        "lift",
        "leverage",
        "conviction",
        "jaccard",
        "cosine",
    )

    def __init__(self, rule: AssociationRule, support_oracle: SupportOracle) -> None:
        support_x = support_oracle(rule.antecedent)
        support_y = support_oracle(rule.consequent)
        support_xy = rule.support
        self.rule = rule
        self.support = support_xy
        self.confidence = confidence(support_xy, support_x)
        self.lift = lift(support_xy, support_x, support_y)
        self.leverage = leverage(support_xy, support_x, support_y)
        self.conviction = conviction(support_xy, support_x, support_y)
        self.jaccard = jaccard(support_xy, support_x, support_y)
        self.cosine = cosine(support_xy, support_x, support_y)

    def as_dict(self) -> dict[str, float]:
        """Return the measures as a plain dictionary (used by reports)."""
        return {
            "support": self.support,
            "confidence": self.confidence,
            "lift": self.lift,
            "leverage": self.leverage,
            "conviction": self.conviction,
            "jaccard": self.jaccard,
            "cosine": self.cosine,
        }


def rule_metrics(
    rules: Iterable[AssociationRule], support_oracle: SupportOracle
) -> list[RuleMetrics]:
    """Compute :class:`RuleMetrics` for every rule of an iterable."""
    return [RuleMetrics(rule, support_oracle) for rule in rules]


def summarize_rules(rules: RuleSet | RuleArrays) -> dict[str, float | int]:
    """Summary statistics of a rule collection, as numpy column reductions.

    Works directly on a columnar :class:`~repro.core.rulearrays.RuleArrays`
    or on a :class:`~repro.core.rules.RuleSet` (whose columnar form is
    obtained — and cached — through ``RuleSet.to_arrays``, a zero-copy
    accessor for the array-native bases).  No per-rule Python object is
    touched, so summarising a million-rule basis costs a few vector
    passes.
    """
    arrays = rules if isinstance(rules, RuleArrays) else rules.to_arrays()
    exact = arrays.count_exact()
    return {
        "rules": len(arrays),
        "exact_rules": exact,
        "approximate_rules": len(arrays) - exact,
        "average_support": arrays.average_support(),
        "average_confidence": arrays.average_confidence(),
    }
