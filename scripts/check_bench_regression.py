#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and flag engine regressions.

Usage::

    python scripts/check_bench_regression.py baseline.json current.json \
        [--threshold 2.0] [--filter engine]

Benchmarks are matched by their fully qualified name.  A benchmark whose
mean time in *current* exceeds ``threshold`` × its mean in *baseline*
counts as a regression; the script prints a per-benchmark table and exits
non-zero when any matched benchmark regressed.  Only benchmarks whose
name contains the ``--filter`` substring are gated (default: ``engine``,
the engine microbenchmarks of ``bench_algorithms_micro.py``), because the
table/figure reproductions are single-shot and too noisy to gate on.

Benchmarks present in only one file are reported but never fail the
check, so adding or renaming a benchmark does not break CI.  In CI this
runs as an *advisory* step (``continue-on-error``): a red mark that
reviewers see, not a merge blocker, until enough history exists to trust
the runner's variance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """Return ``benchmark fullname -> mean seconds`` from a benchmark JSON."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read benchmark file {path}: {exc}") from exc
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[name] = float(mean)
    return means


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="benchmark JSON of the base ref")
    parser.add_argument("current", type=Path, help="benchmark JSON of this change")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current mean > threshold x baseline mean (default: 2.0)",
    )
    parser.add_argument(
        "--filter",
        default="engine",
        help="only gate benchmarks whose name contains this substring "
        "(default: 'engine'; use '' to gate everything)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        # No baseline (e.g. the base ref predates the benchmark suite or
        # its run failed): nothing to compare against, not a regression.
        print(f"baseline file {args.baseline} not found; nothing to gate")
        return 0
    baseline = load_means(args.baseline)
    current = load_means(args.current)

    gated = sorted(
        name for name in baseline.keys() & current.keys() if args.filter in name
    )
    if not gated:
        print(f"no common benchmarks match filter {args.filter!r}; nothing to gate")
        return 0

    regressions = []
    width = max(len(name) for name in gated)
    print(f"{'benchmark':<{width}}  {'base':>10}  {'current':>10}  ratio")
    for name in gated:
        ratio = current[name] / baseline[name]
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(
            f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  "
            f"{current[name] * 1e3:>8.2f}ms  {ratio:5.2f}x{flag}"
        )
        if ratio > args.threshold:
            regressions.append((name, ratio))

    only_base = sorted(baseline.keys() - current.keys())
    only_current = sorted(current.keys() - baseline.keys())
    if only_base:
        print(f"note: {len(only_base)} benchmark(s) only in baseline (ignored)")
    if only_current:
        print(f"note: {len(only_current)} benchmark(s) only in current (ignored)")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) slower than "
            f"{args.threshold:.1f}x baseline:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nok: no engine benchmark slower than {args.threshold:.1f}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
