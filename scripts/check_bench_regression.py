#!/usr/bin/env python
"""Compare pytest-benchmark JSON files and flag engine regressions.

Usage::

    python scripts/check_bench_regression.py baseline.json current.json \
        [--threshold 2.0] [--filter engine]

    # best-of-N: pass comma-separated runs per side
    python scripts/check_bench_regression.py \
        base-1.json,base-2.json,base-3.json \
        cur-1.json,cur-2.json,cur-3.json

Each side accepts one path or a comma-separated list of paths; with
several runs the *minimum* mean per benchmark is used (best-of-N), which
damps the runner variance that made the single-run gate advisory-only.
Missing files in a list are skipped.  A *baseline* side with no readable
benchmarks means "nothing to gate" and exits zero, so the gate never
fails just because the base ref predates the benchmark suite — but a
*current* side with no readable benchmarks exits non-zero: this change's
own benchmark runs producing nothing is a broken suite, not a pass.

Benchmarks are matched by their fully qualified name.  A benchmark whose
best mean in *current* exceeds ``threshold`` × its best mean in
*baseline* counts as a regression; the script prints a per-benchmark
table and exits non-zero when any matched benchmark regressed.  Only
benchmarks whose name contains the ``--filter`` substring are gated
(default: ``engine``, the engine microbenchmarks of
``bench_algorithms_micro.py``), because the table/figure reproductions
are single-shot and too noisy to gate on.

Benchmarks present in only one side never fail the check, so adding or
renaming a benchmark does not break CI — but benchmarks that exist in
the baseline and are *missing* from the current run are listed with a
loud ``WARNING`` (deleting a benchmark is otherwise an easy way to dodge
the gate).  In CI this runs as a *blocking* step of the benchmark job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float] | None:
    """``benchmark fullname -> mean seconds`` from a benchmark JSON.

    Returns ``None`` when the file is missing or unreadable (e.g. the
    empty JSON pytest-benchmark leaves behind when a run dies mid-way) —
    a skipped run must not abort the blocking gate, that is exactly the
    flakiness best-of-N exists to absorb.

    Keys are the pytest-benchmark ``fullname`` (module::test[id]), which
    keeps parametrised variants — e.g. a ``[4workers]`` run next to its
    ``[serial]`` baseline — distinct.  When an entry carries only a bare
    ``name`` and that name collides with one already loaded from the
    same file, the duplicate is suffixed (``name#2``, ``name#3``, …)
    instead of silently overwriting the earlier mean: two different
    benchmarks must never alias to one gate entry.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"note: cannot read benchmark file {path} ({exc}); skipped")
        return None
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            if name in means:
                suffix = 2
                while f"{name}#{suffix}" in means:
                    suffix += 1
                print(
                    f"note: duplicate benchmark name {name!r} in {path}; "
                    f"recorded as {name}#{suffix}"
                )
                name = f"{name}#{suffix}"
            means[name] = float(mean)
    return means


def load_best_means(spec: str) -> tuple[dict[str, float], int]:
    """Best-of-N means over a comma-separated list of benchmark JSONs.

    Returns the per-benchmark minimum mean across the files that exist,
    plus the number of files that were actually read.
    """
    best: dict[str, float] = {}
    used = 0
    for part in (p.strip() for p in spec.split(",")):
        if not part:
            continue
        path = Path(part)
        if not path.exists():
            print(f"note: {path} not found; skipped")
            continue
        means = load_means(path)
        if means is None:
            continue
        used += 1
        for name, mean in means.items():
            if name not in best or mean < best[name]:
                best[name] = mean
    return best, used


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline",
        help="benchmark JSON of the base ref (comma-separated list for best-of-N)",
    )
    parser.add_argument(
        "current",
        help="benchmark JSON of this change (comma-separated list for best-of-N)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current mean > threshold x baseline mean (default: 2.0)",
    )
    parser.add_argument(
        "--filter",
        default="engine",
        help="only gate benchmarks whose name contains this substring "
        "(default: 'engine'; use '' to gate everything)",
    )
    args = parser.parse_args(argv)

    # The current side is checked FIRST: an empty current run means this
    # change's own benchmark suite produced nothing — crashed, collected
    # zero benchmarks, or pointed at the wrong files — and must fail the
    # gate whatever the baseline looks like (an environmental break
    # usually empties both sides at once).
    current, current_runs = load_best_means(args.current)
    if not current:
        print(
            "ERROR: no readable current-run benchmarks — the benchmark "
            "suite of this change produced no results; failing the gate "
            "instead of silently passing it"
        )
        return 1
    baseline, baseline_runs = load_best_means(args.baseline)
    if not baseline:
        # No baseline (e.g. the base ref predates the benchmark suite or
        # its runs failed): nothing to compare against, not a regression.
        print("no readable baseline benchmarks; nothing to gate")
        return 0
    print(
        f"comparing best-of-{current_runs} current "
        f"against best-of-{baseline_runs} baseline"
    )

    gated = sorted(
        name for name in baseline.keys() & current.keys() if args.filter in name
    )
    if not gated:
        print(f"no common benchmarks match filter {args.filter!r}; nothing to gate")
        return 0

    regressions = []
    width = max(len(name) for name in gated)
    print(f"{'benchmark':<{width}}  {'base':>10}  {'current':>10}  ratio")
    for name in gated:
        ratio = current[name] / baseline[name]
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(
            f"{name:<{width}}  {baseline[name] * 1e3:>8.2f}ms  "
            f"{current[name] * 1e3:>8.2f}ms  {ratio:5.2f}x{flag}"
        )
        if ratio > args.threshold:
            regressions.append((name, ratio))

    only_base = sorted(baseline.keys() - current.keys())
    only_current = sorted(current.keys() - baseline.keys())
    if only_base:
        # A benchmark that exists in the baseline but not in the current
        # run cannot regress by definition — deleting or renaming one is
        # therefore an easy way to dodge the gate.  It never *fails* the
        # check (renames and intentional removals are legitimate), but it
        # must be impossible to miss in the log.
        print(
            f"\nWARNING: {len(only_base)} benchmark(s) present in baseline "
            "but MISSING from current — a deleted or renamed benchmark "
            "silently escapes the regression gate:"
        )
        for name in only_base:
            gated_note = " [was gated]" if args.filter in name else ""
            print(f"  MISSING {name}{gated_note}")
    if only_current:
        print(f"note: {len(only_current)} benchmark(s) only in current (new; ignored)")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) slower than "
            f"{args.threshold:.1f}x baseline:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nok: no engine benchmark slower than {args.threshold:.1f}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
