#!/usr/bin/env python
"""Check that every relative markdown link in the repo docs resolves.

Usage::

    python scripts/check_markdown_links.py README.md ROADMAP.md docs/*.md

For each ``[text](target)`` link in the given files:

* ``http(s)://`` and ``mailto:`` targets are skipped (no network in CI);
* relative file targets must exist on disk (resolved against the
  containing file's directory);
* ``#anchor`` fragments — standalone or on a file target — must match a
  heading in the (target) document, using GitHub's slug rules
  (lowercase, spaces to dashes, punctuation stripped).

Exits non-zero listing every broken link.  Inline code spans are
stripped first so literal ``[x](y)`` examples inside backticks don't
count as links.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE = re.compile(r"`[^`]*`")


def github_slug(heading: str) -> str:
    """Return the GitHub anchor slug of a markdown heading."""
    text = INLINE_CODE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[^\w\- ]", "", text.strip().lower())
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes."""
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match) for match in HEADING.findall(text)}


def check_file(path: Path) -> list[str]:
    """Return the broken links of one markdown file."""
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE.sub("", text)
    text = INLINE_CODE.sub("", text)
    problems = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if file_part and not resolved.exists():
            problems.append(f"{path}: broken link target: {target}")
            continue
        if anchor:
            if resolved.suffix.lower() not in (".md", ""):
                continue  # anchors into non-markdown files: not checked
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path}: broken anchor #{anchor} "
                    f"(no matching heading in {resolved.name})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    paths = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    problems: list[str] = []
    for path in paths:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{len(paths)} files checked, all links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
