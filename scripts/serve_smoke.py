#!/usr/bin/env python
"""Boot `repro serve` on the Fig. 1 store and diff every endpoint vs golden.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py             # check
    PYTHONPATH=src python scripts/serve_smoke.py --update    # regenerate

End-to-end CI smoke of the serving daemon: mine the paper's Fig. 1
context, save it into a store container, start a real HTTP server on an
ephemeral port, query one representative request per endpoint family
over the wire, normalize the volatile fields (paths, ports, latencies,
uptime) and compare the combined JSON document
character-for-character against ``tests/golden/serve_smoke.json``.

A drift in any endpoint's answer shape or content — a renamed key, a
changed rule order, a different statistic — fails this script, exactly
like the CLI golden files.
"""

from __future__ import annotations

import argparse
import difflib
import http.client
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "serve_smoke.json"

FIG1_TRANSACTIONS = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]

#: One representative request per endpoint family.
REQUESTS = [
    ("GET", "/healthz", None),
    ("GET", "/bases", None),
    ("GET", "/bases/dg/rules", None),
    ("GET", "/bases/all/rules?min_confidence=0.75&limit=3&offset=1", None),
    ("GET", "/bases/luxenburger/rules?kind=approximate", None),
    ("GET", "/bases/nope/rules", None),
    ("POST", "/derive", {"antecedent": ["c"], "consequent": ["b", "e"]}),
    ("POST", "/derive", {"antecedent": ["a"], "consequent": ["d"]}),
    ("POST", "/recommend", {"basket": ["b", "c"], "k": 3}),
    ("POST", "/recommend", {"basket": [], "basis": "dg"}),
    ("POST", "/recommend", {"basket": ["a"], "basis": "nope"}),
    ("GET", "/metrics", None),
]

#: Volatile keys replaced by a placeholder before comparison.
VOLATILE = {
    "store", "uptime_seconds", "qps", "latency_seconds_total",
    "latency_seconds_max", "latency_seconds_mean",
}


def normalize(value):
    """Replace run-dependent values so the document is reproducible."""
    if isinstance(value, dict):
        normalized = {
            key: "<volatile>" if key in VOLATILE else normalize(child)
            for key, child in value.items()
        }
        # The startup healthz probes make every healthz-derived counter
        # timing-dependent (one probe normally, more on a slow machine).
        if "endpoints" in normalized and "requests_total" in normalized:
            normalized["requests_total"] = "<volatile>"
            healthz = normalized["endpoints"].get("GET /healthz")
            if isinstance(healthz, dict):
                healthz["count"] = "<volatile>"
        return normalized
    if isinstance(value, list):
        return [normalize(child) for child in value]
    return value


def collect() -> str:
    """Run the daemon and return the normalized combined JSON document."""
    from repro.data.context import TransactionDatabase
    from repro.experiments.harness import (
        build_rule_artifacts,
        mine_itemsets,
        save_artifacts,
    )
    from repro.serve import ServeApp, serve_in_thread
    from repro.testing import wait_until_healthy

    db = TransactionDatabase(FIG1_TRANSACTIONS, name="fig1")
    mining = mine_itemsets(db, minsup=0.4)
    artifacts = build_rule_artifacts(mining, minconf=0.7)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "fig1.npz"
        save_artifacts(store_path, mining, artifacts)
        server, _thread = serve_in_thread(ServeApp(store_path, watch=False))
        host, port = server.server_address[:2]
        # Bounded retry until the accept loop actually answers — a
        # fixed sleep (or none) races the server thread's startup.
        wait_until_healthy(host, port, timeout=30.0)
        connection = http.client.HTTPConnection(host, port, timeout=30)
        document = []
        try:
            for method, path, body in REQUESTS:
                payload = json.dumps(body) if body is not None else None
                headers = (
                    {"Content-Type": "application/json"} if payload else {}
                )
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                document.append({
                    "request": f"{method} {path}",
                    "status": response.status,
                    "body": normalize(json.loads(response.read())),
                })
        finally:
            connection.close()
            server.shutdown()
            server.server_close()
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate the golden file instead of checking",
    )
    args = parser.parse_args(argv)

    actual = collect()
    if args.update:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(actual, encoding="utf-8")
        print(f"regenerated {GOLDEN_PATH.relative_to(REPO_ROOT)}")
        return 0
    if not GOLDEN_PATH.exists():
        print(
            f"golden file {GOLDEN_PATH} is missing; run with --update",
            file=sys.stderr,
        )
        return 1
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    if actual != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile="golden/serve_smoke.json",
            tofile="actual",
        ))
        print(f"serve output drifted from golden:\n{diff}", file=sys.stderr)
        return 1
    print(f"{len(REQUESTS)} endpoint answers match golden/serve_smoke.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
