#!/usr/bin/env python
"""Threaded load-test harness for the ``repro serve`` daemon.

Usage::

    # against a store, self-hosting an in-process daemon on an
    # ephemeral port (no separate server process needed):
    PYTHONPATH=src python scripts/load_test_serve.py --store run.npz

    # against an already-running daemon:
    PYTHONPATH=src python scripts/load_test_serve.py \
        --url http://127.0.0.1:8000 --threads 16 --requests 2000

Each worker thread opens one persistent ``http.client.HTTPConnection``
(keep-alive, like a real client pool) and walks a deterministic mix of
endpoints — ``/healthz``, ``/bases``, several filtered/paginated
``/bases/<name>/rules`` pages and, when the store supports it,
``POST /derive`` candidates sampled from the served rules.  The report
prints overall QPS, per-endpoint latency percentiles and error counts,
plus the daemon's own ``/metrics`` cache counters before and after the
run, so a cache-sizing change is visible in one invocation.

Clients are robust the way the serving docs tell real clients to be:
a 503 (overload shedding, a worker draining) or a dropped connection
(a worker crash under the supervisor) is retried with jittered
exponential backoff up to ``--retries`` times; only exhausted retries
count as failures.

Stdlib only; exits non-zero if any request failed.
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import statistics
import sys
import threading
import time
from urllib.parse import urlsplit


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (which must be sorted)."""
    if not samples:
        return 0.0
    index = min(len(samples) - 1, max(0, round(fraction * (len(samples) - 1))))
    return samples[index]


class Worker(threading.Thread):
    """One client thread: a persistent connection walking the request mix."""

    def __init__(self, host, port, requests, start_barrier, mix, retries=3):
        super().__init__(daemon=True)
        self.host = host
        self.port = port
        self.requests = requests
        self.start_barrier = start_barrier
        self.mix = mix
        self.retries = retries
        self.retried = 0
        self.latencies: dict[str, list[float]] = {}
        self.errors: list[str] = []

    def run(self) -> None:
        self._connection = http.client.HTTPConnection(
            self.host, self.port, timeout=30
        )
        self.start_barrier.wait()
        try:
            for i in range(self.requests):
                label, method, path, body = self.mix[i % len(self.mix)]
                started = time.perf_counter()
                error = self._attempt(method, path, body)
                if error is not None:
                    self.errors.append(error)
                    continue
                self.latencies.setdefault(label, []).append(
                    time.perf_counter() - started
                )
        finally:
            self._connection.close()

    def _reconnect(self) -> None:
        self._connection.close()
        self._connection = http.client.HTTPConnection(
            self.host, self.port, timeout=30
        )

    def _attempt(self, method, path, body) -> str | None:
        """Run one request with bounded retries; returns the final error.

        Retryable outcomes — a dropped/reset connection (worker crash)
        and HTTP 503 (overload shedding, deadline, draining) — back off
        with decorrelated jitter before the next try.  Anything else
        >= 500 fails immediately; ``None`` means success.
        """
        last_error = f"{method} {path} -> not attempted"
        for attempt in range(self.retries + 1):
            if attempt:
                self.retried += 1
                delay = min(1.0, 0.05 * (2 ** (attempt - 1)))
                time.sleep(delay * (0.5 + random.random()))
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            try:
                self._connection.request(
                    method, path, body=body, headers=headers
                )
                response = self._connection.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException) as exc:
                last_error = f"{method} {path} -> {exc!r}"
                self._reconnect()
                continue
            if response.status == 503:
                last_error = (
                    f"{method} {path} -> 503 after {attempt + 1} tries: "
                    f"{payload[:200]!r}"
                )
                continue
            if response.status >= 500:
                return (
                    f"{method} {path} -> {response.status}: {payload[:200]!r}"
                )
            return None
        return last_error


def fetch_json(host: str, port: int, path: str) -> dict:
    """One ad-hoc GET returning the decoded JSON payload."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return json.loads(response.read())
    finally:
        connection.close()


def build_mix(host: str, port: int) -> list[tuple[str, str, str, str | None]]:
    """Build the request mix from the daemon's own /bases listing.

    The mix interleaves the cheap endpoints with rule pages over every
    served basis (several filter combinations, so both cache hits and
    distinct cache entries occur) and a few derivation candidates taken
    from the first served rules.
    """
    bases = fetch_json(host, port, "/bases")["bases"]
    mix: list[tuple[str, str, str, str | None]] = [
        ("healthz", "GET", "/healthz", None),
        ("bases", "GET", "/bases", None),
    ]
    for basis in bases:
        name = basis["name"]
        mix.append(("rules", "GET", f"/bases/{name}/rules?limit=50", None))
        mix.append(
            ("rules", "GET", f"/bases/{name}/rules?min_confidence=0.8", None)
        )
        mix.append(
            ("rules", "GET", f"/bases/{name}/rules?limit=25&offset=25", None)
        )
    for basis in bases:
        name = basis["name"]
        page = fetch_json(host, port, f"/bases/{name}/rules?limit=5")
        for rule in page["rules"]:
            if not rule["antecedent"]:
                continue
            body = json.dumps(
                {
                    "antecedent": rule["antecedent"],
                    "consequent": rule["consequent"],
                }
            )
            mix.append(("derive", "POST", "/derive", body))
        if len(mix) >= 24:
            break
    mix.append(("metrics", "GET", "/metrics", None))
    return mix


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running daemon")
    target.add_argument(
        "--store", help="store file to self-host on an ephemeral port"
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="client threads (default: 8)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=400,
        help="total requests across all threads (default: 400)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="answer-cache capacity of the self-hosted daemon",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="retry budget per request for 503s and dropped connections, "
        "with jittered exponential backoff (default: 3; 0 disables)",
    )
    args = parser.parse_args(argv)

    server = None
    if args.store:
        from repro.serve import ServeApp, serve_in_thread

        app = ServeApp(args.store, cache_size=args.cache_size, watch=False)
        server, _ = serve_in_thread(app)
        host, port = server.server_address[:2]
        print(f"self-hosting {args.store} at {server.url}")
    else:
        parsed = urlsplit(args.url)
        host, port = parsed.hostname, parsed.port or 80

    try:
        mix = build_mix(host, port)
        before = fetch_json(host, port, "/metrics")
        per_thread = max(1, args.requests // args.threads)
        barrier = threading.Barrier(args.threads + 1)
        workers = [
            Worker(host, port, per_thread, barrier, mix, retries=args.retries)
            for _ in range(args.threads)
        ]
        for worker in workers:
            worker.start()
        started = time.perf_counter()
        barrier.wait()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        after = fetch_json(host, port, "/metrics")
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()

    total = sum(
        len(samples)
        for worker in workers
        for samples in worker.latencies.values()
    )
    errors = [error for worker in workers for error in worker.errors]
    print(
        f"\n{total} requests, {args.threads} threads, "
        f"{elapsed:.2f}s wall, {total / elapsed:.0f} req/s"
    )
    print(f"{'endpoint':<10} {'count':>6} {'mean':>9} {'p50':>9} "
          f"{'p95':>9} {'max':>9}")
    merged: dict[str, list[float]] = {}
    for worker in workers:
        for label, samples in worker.latencies.items():
            merged.setdefault(label, []).extend(samples)
    for label in sorted(merged):
        samples = sorted(merged[label])
        print(
            f"{label:<10} {len(samples):>6} "
            f"{statistics.fmean(samples) * 1e3:>8.2f}m "
            f"{_percentile(samples, 0.50) * 1e3:>8.2f}m "
            f"{_percentile(samples, 0.95) * 1e3:>8.2f}m "
            f"{samples[-1] * 1e3:>8.2f}m"
        )
    cache_before = before["cache"]
    cache_after = after["cache"]
    print(
        f"cache: {cache_after['hits'] - cache_before['hits']} hits / "
        f"{cache_after['misses'] - cache_before['misses']} misses this run "
        f"({cache_after['size']}/{cache_after['capacity']} entries)"
    )
    retried = sum(worker.retried for worker in workers)
    if retried:
        print(f"retries: {retried} (budget {args.retries}/request)")
    if errors:
        print(f"\n{len(errors)} FAILED requests, first 5:", file=sys.stderr)
        for error in errors[:5]:
            print(f"  {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
