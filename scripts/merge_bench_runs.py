#!/usr/bin/env python
"""Merge pytest-benchmark JSON runs into one normalized trajectory file.

Usage::

    python scripts/merge_bench_runs.py run1.json run2.json run3.json \
        --output BENCH_abc1234.json [--commit abc1234]

CI's bench-smoke job runs the microbenchmark suite three times (best-of-3
damps runner variance) and leaves three raw pytest-benchmark JSONs behind
— useful for debugging one run, useless for tracking performance across
PRs.  This script folds them into a single small, stable-schema document
keyed by the short commit SHA, so the artifact series
``BENCH_<short-sha>.json`` forms a machine-readable performance
trajectory of the repository:

.. code-block:: json

    {
        "schema": 1,
        "commit": "abc1234",
        "runs": 3,
        "benchmarks": {
            "<fullname>": {"median": 0.0112, "mean": 0.0115, "rounds": 42}
        }
    }

``median``/``mean`` are the best (minimum) per-benchmark values across
the runs — the same best-of-N statistic ``check_bench_regression.py``
gates on — and ``rounds`` is summed over the runs that contained the
benchmark.  Missing or unreadable run files are skipped with a note, so
one flaky run does not break the artifact; having zero readable runs —
or readable runs that together contain zero benchmark entries — is an
error: an empty trajectory artifact would silently break the
performance series downstream tooling reads.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ioutils import atomic_write  # noqa: E402 (path bootstrap above)


def load_run(path: Path) -> dict | None:
    """One raw pytest-benchmark payload, or ``None`` when unreadable."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"note: cannot read benchmark file {path} ({exc}); skipped")
        return None


def merge_runs(payloads: list[dict]) -> dict[str, dict[str, float | int]]:
    """Best-of-N medians/means (and summed rounds) per benchmark fullname.

    Within one run file a repeated name (possible when an entry carries
    only a bare ``name`` — parametrised variants such as ``[serial]`` /
    ``[4workers]`` collapse onto it) is suffixed ``name#2``, ``name#3``,
    … in encounter order instead of overwriting: benchmark order is
    stable across pytest runs, so the k-th duplicate of every run merges
    with the k-th duplicate of the others, never with a different
    benchmark.
    """
    merged: dict[str, dict[str, float | int]] = {}
    for payload in payloads:
        seen: set[str] = set()
        for bench in payload.get("benchmarks", []):
            name = bench.get("fullname") or bench.get("name")
            stats = bench.get("stats") or {}
            median = stats.get("median")
            mean = stats.get("mean")
            if not name or not isinstance(median, (int, float)) or median <= 0:
                continue
            if name in seen:
                suffix = 2
                while f"{name}#{suffix}" in seen:
                    suffix += 1
                name = f"{name}#{suffix}"
            seen.add(name)
            entry = merged.setdefault(
                name, {"median": float("inf"), "mean": float("inf"), "rounds": 0}
            )
            entry["median"] = min(entry["median"], float(median))
            if isinstance(mean, (int, float)) and mean > 0:
                entry["mean"] = min(entry["mean"], float(mean))
            entry["rounds"] = int(entry["rounds"]) + int(stats.get("rounds") or 0)
    for entry in merged.values():
        if entry["mean"] == float("inf"):
            entry["mean"] = entry["median"]
    return merged


def commit_from_payload(payloads: list[dict]) -> str | None:
    """Short commit id recorded by pytest-benchmark, if any."""
    for payload in payloads:
        commit = (payload.get("commit_info") or {}).get("id")
        if commit:
            return str(commit)[:7]
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("runs", nargs="+", help="raw pytest-benchmark JSON files")
    parser.add_argument(
        "--output",
        required=True,
        help="path of the normalized trajectory JSON to write "
        "(convention: BENCH_<short-sha>.json)",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit id to record (default: pytest-benchmark's commit_info, "
        "else 'unknown')",
    )
    args = parser.parse_args(argv)

    payloads = [
        payload
        for payload in (load_run(Path(run)) for run in args.runs)
        if payload is not None
    ]
    if not payloads:
        print("error: no readable benchmark runs; nothing to merge", file=sys.stderr)
        return 1

    merged = merge_runs(payloads)
    if not merged:
        print(
            "error: the readable runs contain no benchmark entries; "
            "refusing to write an empty trajectory",
            file=sys.stderr,
        )
        return 1
    commit = args.commit or commit_from_payload(payloads) or "unknown"
    document = {
        "schema": 1,
        "commit": commit,
        "runs": len(payloads),
        "benchmarks": {name: merged[name] for name in sorted(merged)},
    }
    output = Path(args.output)
    # Atomic so an interrupted merge can't leave a half-written
    # trajectory for check_bench_regression.py to choke on.
    with atomic_write(output, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, indent=2) + "\n")
    print(
        f"wrote {output} ({len(merged)} benchmarks, best of {len(payloads)} "
        f"runs, commit {commit})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
