"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that the legacy editable-install path (``pip install -e .
--no-use-pep517`` or ``python setup.py develop``) keeps working in offline
environments where the ``wheel`` package — required by PEP 660 editable
builds with older setuptools — is not available.
"""

from setuptools import setup

setup()
